package pager

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The manifest carries the atomicity of a sharded publication, so its
// hostile-input suite mirrors corrupt_test.go: every way a manifest
// can lie — truncation, bit flips anywhere, version skew, implausible
// counts, cross-format confusion with snapshot files — must surface as
// an error from ReadManifest, never a misread shard set.

func goodManifest() *Manifest {
	return &Manifest{
		Generation: 7,
		Dim:        16,
		Shards: []ManifestShard{
			{Generation: 7, Bytes: 4096, HeaderCRC: 0xDEADBEEF},
			{Generation: 3, Bytes: 8192, HeaderCRC: 0x01020304},
			{Generation: 0, Bytes: 0, HeaderCRC: 0}, // durably empty shard
			{Generation: 6, Bytes: 512, HeaderCRC: 0xFFFFFFFF},
		},
	}
}

func TestManifestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "set.hdsm")
	want := goodManifest()
	n, err := WriteManifestAtomic(path, want)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(path); err != nil || st.Size() != n {
		t.Fatalf("stat after write: size=%v err=%v, reported %d bytes", st, err, n)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != want.Generation || got.Dim != want.Dim || len(got.Shards) != len(want.Shards) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
	for i := range want.Shards {
		if got.Shards[i] != want.Shards[i] {
			t.Fatalf("shard %d mismatch: got %+v want %+v", i, got.Shards[i], want.Shards[i])
		}
	}
}

// TestManifestBitFlips flips every byte of a valid manifest in turn;
// the trailing CRC (or, for the magic, the signature check) must
// reject each one.
func TestManifestBitFlips(t *testing.T) {
	b, err := EncodeManifest(goodManifest())
	if err != nil {
		t.Fatal(err)
	}
	for off := range b {
		c := append([]byte(nil), b...)
		c[off] ^= 0x10
		if _, err := DecodeManifest(c); err == nil {
			t.Fatalf("decode accepted a bit flip at byte %d", off)
		}
	}
}

// TestManifestTruncation cuts the encoding at every length; all must
// fail, including one byte short and one byte long.
func TestManifestTruncation(t *testing.T) {
	b, err := EncodeManifest(goodManifest())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, err := DecodeManifest(b[:cut]); err == nil {
			t.Fatalf("decode accepted a manifest truncated to %d of %d bytes", cut, len(b))
		}
	}
	if _, err := DecodeManifest(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatal("decode accepted a manifest with a trailing byte")
	}
}

// TestManifestVersionSkewAndBadCounts re-checksums corrupted fields so
// only the semantic validation can catch them.
func TestManifestVersionSkewAndBadCounts(t *testing.T) {
	restamp := func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[len(b)-4:], crc32.Checksum(b[:len(b)-4], castagnoli))
		return b
	}
	base, err := EncodeManifest(goodManifest())
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), base...)
		f(b)
		return restamp(b)
	}
	le := binary.LittleEndian
	cases := map[string][]byte{
		"future version":  mut(func(b []byte) { le.PutUint32(b[4:], ManifestVersion+1) }),
		"zero generation": mut(func(b []byte) { le.PutUint64(b[8:], 0) }),
		"zero dim":        mut(func(b []byte) { le.PutUint32(b[16:], 0) }),
		"zero shards":     mut(func(b []byte) { le.PutUint32(b[20:], 0) }),
		"shard count overflows length": mut(func(b []byte) {
			le.PutUint32(b[20:], uint32(len(goodManifest().Shards)+1))
		}),
		"huge shard count": mut(func(b []byte) { le.PutUint32(b[20:], MaxManifestShards+1) }),
		"shard gen beyond manifest gen": mut(func(b []byte) {
			le.PutUint64(b[manifestFixedBytes:], uint64(goodManifest().Generation+1))
		}),
	}
	for name, b := range cases {
		if _, err := DecodeManifest(b); err == nil {
			t.Errorf("decode accepted %s", name)
		}
	}
}

// TestManifestCrossFormatConfusion: a snapshot file handed to
// ReadManifest and a manifest handed to Open must both fail with
// errors that name the other format, so an operator who points a
// sharded server at an unsharded file (or vice versa) gets told
// exactly what happened.
func TestManifestCrossFormatConfusion(t *testing.T) {
	dir := t.TempDir()

	snap := filepath.Join(dir, "single.hdsn")
	if err := os.WriteFile(snap, goodSnapshotBytes(t, 0), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(snap); err == nil {
		t.Fatal("ReadManifest accepted a snapshot file")
	} else if !strings.Contains(err.Error(), "single snapshot") {
		t.Fatalf("snapshot-as-manifest error does not name the format: %v", err)
	}

	man := filepath.Join(dir, "set.hdsm")
	if _, err := WriteManifestAtomic(man, goodManifest()); err != nil {
		t.Fatal(err)
	}
	if s, err := Open(man); err == nil {
		s.Close()
		t.Fatal("Open accepted a manifest file")
	} else if !strings.Contains(err.Error(), "manifest") {
		t.Fatalf("manifest-as-snapshot error does not name the format: %v", err)
	}

	if _, err := ReadManifest(filepath.Join(dir, "missing.hdsm")); err == nil {
		t.Fatal("ReadManifest accepted a missing file")
	}
	empty := filepath.Join(dir, "empty.hdsm")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(empty); err == nil {
		t.Fatal("ReadManifest accepted an empty file")
	}
}

// TestManifestAtomicReplace overwrites an existing manifest and checks
// the new content landed and no tmp files survive; a stale tmp from a
// simulated crash is swept by the next write.
func TestManifestAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "set.hdsm")
	m := goodManifest()
	if _, err := WriteManifestAtomic(path, m); err != nil {
		t.Fatal(err)
	}
	stale := path + ".tmp-12345"
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	m.Generation = 8
	m.Shards[1].Generation = 8
	if _, err := WriteManifestAtomic(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 8 || got.Shards[1].Generation != 8 {
		t.Fatalf("replace did not land: %+v", got)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale tmp not swept: %v", err)
	}
	left, _ := filepath.Glob(path + ".tmp-*")
	if len(left) != 0 {
		t.Fatalf("tmp files left behind: %v", left)
	}
}

// TestShardPathRoundTrip pins the shard-file naming scheme and its
// parser against each other, plus ShardFiles discovery.
func TestShardPathRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "set.hdsm")
	cases := []struct {
		shard int
		gen   int64
	}{{0, 1}, {3, 42}, {999, 1 << 40}}
	for _, c := range cases {
		p := ShardPath(base, c.shard, c.gen)
		s, g, ok := ParseShardPath(base, p)
		if !ok || s != c.shard || g != c.gen {
			t.Fatalf("round trip (%d,%d) -> %q -> (%d,%d,%v)", c.shard, c.gen, p, s, g, ok)
		}
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Foreign files must not parse.
	for _, bad := range []string{
		base + ".sX.g1.hdsn", base + ".s1.gX.hdsn", base + ".s1.hdsn",
		base, filepath.Join(dir, "other.s001.g1.hdsn"),
	} {
		if _, _, ok := ParseShardPath(base, bad); ok {
			t.Fatalf("parsed foreign name %q", bad)
		}
	}
	files, err := ShardFiles(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(cases) {
		t.Fatalf("ShardFiles found %d files, want %d: %v", len(files), len(cases), files)
	}
}

// TestFileSummary pins that (headerCRC, size) identifies a snapshot
// file: it round-trips on a good file and detects any content change.
func TestFileSummary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.hdsn")
	good := goodSnapshotBytes(t, 2)
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	crc, size, err := FileSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(good)) {
		t.Fatalf("size %d, want %d", size, len(good))
	}
	if want := binary.LittleEndian.Uint32(good[headerBytes-4:]); crc != want {
		t.Fatalf("header CRC %08x, want %08x", crc, want)
	}
	// A different tree yields a different summary.
	other := goodSnapshotBytes(t, 0)
	path2 := filepath.Join(dir, "s2.hdsn")
	if err := os.WriteFile(path2, other, 0o644); err != nil {
		t.Fatal(err)
	}
	crc2, _, err := FileSummary(path2)
	if err != nil {
		t.Fatal(err)
	}
	if crc2 == crc {
		t.Fatal("distinct snapshots share a header CRC; summary does not identify content")
	}
	// Corrupt header fails loudly.
	bad := append([]byte(nil), good...)
	bad[8] ^= 0xFF
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := FileSummary(path); err == nil {
		t.Fatal("FileSummary accepted a corrupt header")
	}
	// Sub-header file fails loudly.
	if err := os.WriteFile(path, good[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := FileSummary(path); err == nil {
		t.Fatal("FileSummary accepted a sub-header file")
	}
}

package pager

import (
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"unsafe"

	"hdidx/internal/query"
)

// requireMmap skips on platforms without the mmap backend, and opens
// path with it forced.
func openMmapT(t *testing.T, path string) *Snapshot {
	t.Helper()
	if !MmapSupported() {
		t.Skip("mmap backend unsupported on this platform")
	}
	s, err := OpenWith(path, Options{Backend: BackendMmap})
	if err != nil {
		t.Fatalf("open mmap: %v", err)
	}
	if s.Backend() != BackendMmap || !s.ZeroCopy() {
		t.Fatalf("forced mmap open came back as %v", s.Backend())
	}
	return s
}

// TestMmapRoundTrip reopens trees through the mapped backend and
// requires every array bit-identical to the tree that was written —
// the directory arrays included, which are served straight from the
// map, never materialized.
func TestMmapRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		n, dim, bits, page int
	}{
		{300, 4, 0, 512},
		{1200, 16, 4, 4096},
		{500, 60, 8, 8192},
		{1, 3, 0, 512},
	}
	for i, c := range cases {
		ft := buildFlat(t, c.n, c.dim, c.bits, int64(300+i))
		path := filepath.Join(dir, "snap")
		if _, err := WriteFile(path, ft, c.page); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		s := openMmapT(t, path)
		equalTrees(t, s.Tree(), ft)
		rng := rand.New(rand.NewSource(int64(i)))
		for qi := 0; qi < 5; qi++ {
			q := uniform(1, c.dim, rng)[0]
			k := 1 + rng.Intn(10)
			if k > c.n {
				k = c.n
			}
			want := query.KNNSearchFlat(ft, q, k)
			got := query.KNNSearchFlat(s.Tree(), q, k)
			if want.Radius != got.Radius || want.LeafAccesses != got.LeafAccesses ||
				!reflect.DeepEqual(want.Neighbors, got.Neighbors) {
				t.Fatalf("case %d: search over mapped tree diverges", i)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("case %d: close: %v", i, err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("case %d: second close not idempotent: %v", i, err)
		}
	}
}

// TestMmapZeroCopy proves the mapped snapshot serves views, not
// copies: the tree's point matrix and every LeafRows result alias the
// mapping, and LeafRows ignores its scratch buffer entirely.
func TestMmapZeroCopy(t *testing.T) {
	ft := buildFlat(t, 500, 8, 0, 11)
	path := filepath.Join(t.TempDir(), "snap")
	if _, err := WriteFile(path, ft, 512); err != nil {
		t.Fatalf("write: %v", err)
	}
	s := openMmapT(t, path)
	defer s.Close()

	mapped := s.Tree().Points.Data
	base := uintptr(unsafe.Pointer(&s.mapped[0]))
	end := base + uintptr(len(s.mapped))
	inMap := func(f []float64) bool {
		p := uintptr(unsafe.Pointer(&f[0]))
		return p >= base && p < end
	}
	if !inMap(mapped) {
		t.Fatal("tree point matrix is not a view into the mapping")
	}
	buf := make([]float64, 8*16)
	poison := buf[0]
	rows := s.LeafRows(3, 7, buf)
	if !inMap(rows) {
		t.Fatal("LeafRows returned a copy, want a view into the mapping")
	}
	if &rows[0] != &mapped[3*8] {
		t.Fatal("LeafRows view does not alias the tree's point matrix")
	}
	if buf[0] != poison {
		t.Fatal("LeafRows wrote into the scratch buffer it must ignore")
	}
	// Directory arrays come straight from the map too.
	cs := s.Tree().ChildStart
	if p := uintptr(unsafe.Pointer(&cs[0])); p < base || p >= end {
		t.Fatal("ChildStart is not a view into the mapping")
	}
	lo, _ := s.Tree().Rects.Corners()
	if !inMap(lo) {
		t.Fatal("RectSet corners are not views into the mapping")
	}
}

// TestMmapFaultAccounting pins the fault-granular counter model: the
// first touch of a page is a seek-able transfer+miss, re-touches are
// hits, and ResetCounters makes the model cold again.
func TestMmapFaultAccounting(t *testing.T) {
	// dim 64 at 512-byte pages: one row is exactly one page.
	ft := buildFlat(t, 256, 64, 0, 9)
	path := filepath.Join(t.TempDir(), "snap")
	if _, err := WriteFile(path, ft, 512); err != nil {
		t.Fatalf("write: %v", err)
	}
	s := openMmapT(t, path)
	defer s.Close()

	rows := s.LeafRows(10, 11, nil)
	if want := ft.Points.Row(10); !reflect.DeepEqual(rows, want) {
		t.Fatal("LeafRows returned wrong row data")
	}
	c := s.Counters()
	if c.Seeks != 1 || c.Transfers != 1 || c.Misses != 1 || c.Hits != 0 {
		t.Fatalf("first touch: %+v, want 1 seek / 1 transfer / 1 miss", c)
	}
	s.LeafRows(10, 11, nil) // resident page: hit, no transfer
	c = s.Counters()
	if c.Transfers != 1 || c.Hits != 1 {
		t.Fatalf("re-touch: %+v, want 1 transfer / 1 hit", c)
	}
	s.LeafRows(11, 12, nil) // adjacent first touch: transfer, no seek
	c = s.Counters()
	if c.Seeks != 1 || c.Transfers != 2 {
		t.Fatalf("adjacent touch: %+v, want 1 seek / 2 transfers", c)
	}
	s.LeafRows(0, 1, nil) // backward first touch: seek
	c = s.Counters()
	if c.Seeks != 2 || c.Transfers != 3 {
		t.Fatalf("backward touch: %+v, want 2 seeks / 3 transfers", c)
	}
	s.ResetCounters() // cold again: the same page re-charges as a fault
	s.LeafRows(10, 11, nil)
	c = s.Counters()
	if c.Seeks != 1 || c.Transfers != 1 || c.Hits != 0 {
		t.Fatalf("after reset: %+v, want 1 seek / 1 transfer", c)
	}
	// A multi-row span: every page of the run charged exactly once.
	s.ResetCounters()
	s.LeafRows(5, 20, nil)
	c = s.Counters()
	if c.Transfers != 15 || c.Misses != 15 {
		t.Fatalf("span: %+v, want 15 transfers", c)
	}
	s.LeafRows(5, 20, nil)
	c = s.Counters()
	if c.Transfers != 15 || c.Hits != 15 {
		t.Fatalf("re-span: %+v, want 15 hits and no new transfers", c)
	}
}

// TestMmapPagedBitIdentity is the property test of the acceptance
// criterion: k-NN, range, and measure searches over the mapped source
// must be bit-identical — radius, leaf and directory accesses,
// neighbor lists including k-th-radius ties — to both the ReadAt pager
// and the in-memory flat path.
func TestMmapPagedBitIdentity(t *testing.T) {
	if !MmapSupported() {
		t.Skip("mmap backend unsupported on this platform")
	}
	for _, c := range []struct {
		n, dim, bits, page int
		seed               int64
	}{
		{3000, 12, 0, 4096, 21},
		{2000, 16, 4, 512, 22},
		{900, 60, 0, 8192, 23},
	} {
		ft := buildFlat(t, c.n, c.dim, c.bits, c.seed)
		path := filepath.Join(t.TempDir(), "snap")
		if _, err := WriteFile(path, ft, c.page); err != nil {
			t.Fatalf("write: %v", err)
		}
		ra, err := OpenWith(path, Options{Backend: BackendReadAt})
		if err != nil {
			t.Fatalf("open readat: %v", err)
		}
		mm := openMmapT(t, path)

		// Duplicate some points so k-th-radius ties exist in the data.
		rng := rand.New(rand.NewSource(c.seed))
		queries := uniform(40, c.dim, rng)
		for qi, q := range queries {
			k := 1 + rng.Intn(20)
			if k > c.n {
				k = c.n
			}
			flat := query.KNNSearchFlat(ft, q, k)
			overRA := query.KNNSearchPaged(ra.Tree(), ra, q, k)
			overMM := query.KNNSearchPaged(mm.Tree(), mm, q, k)
			for _, got := range []query.Result{overRA, overMM} {
				if got.Radius != flat.Radius || got.LeafAccesses != flat.LeafAccesses ||
					got.DirAccesses != flat.DirAccesses ||
					!reflect.DeepEqual(got.Neighbors, flat.Neighbors) {
					t.Fatalf("n=%d dim=%d query %d: paged k-NN diverges from flat", c.n, c.dim, qi)
				}
			}
			r := flat.Radius * (0.8 + 0.4*rng.Float64())
			wantN, wantRes := query.RangeSearchFlat(ft, query.Sphere{Center: q, Radius: r})
			gotN, gotRes := query.RangeSearchPaged(mm.Tree(), mm, query.Sphere{Center: q, Radius: r})
			if gotN != wantN || gotRes.LeafAccesses != wantRes.LeafAccesses ||
				gotRes.DirAccesses != wantRes.DirAccesses {
				t.Fatalf("n=%d dim=%d query %d: paged range diverges from flat", c.n, c.dim, qi)
			}
		}
		wantM := query.MeasureKNNFlat(ft, queries, 10)
		gotM := query.MeasureKNNPaged(mm.Tree(), mm, queries, 10)
		for i := range wantM {
			if wantM[i].Radius != gotM[i].Radius || wantM[i].LeafAccesses != gotM[i].LeafAccesses ||
				wantM[i].DirAccesses != gotM[i].DirAccesses {
				t.Fatalf("measure query %d diverges over mmap", i)
			}
		}
		if c := mm.Counters(); c.Transfers == 0 {
			t.Fatalf("no faults recorded: %+v", c)
		}
		ra.Close()
		mm.Close()
	}
}

// TestMmapPoisonedResident proves paged searches over a mapped
// snapshot never consult another tree's resident arrays: the searches
// run with the original in-memory tree's matrix NaN-poisoned, using
// only the mapped tree, and still answer correctly.
func TestMmapPoisonedResident(t *testing.T) {
	ft := buildFlat(t, 1500, 10, 0, 31)
	path := filepath.Join(t.TempDir(), "snap")
	if _, err := WriteFile(path, ft, 4096); err != nil {
		t.Fatalf("write: %v", err)
	}
	rng := rand.New(rand.NewSource(32))
	queries := uniform(20, 10, rng)
	want := make([]query.Result, len(queries))
	for i, q := range queries {
		want[i] = query.KNNSearchFlat(ft, q, 5)
	}

	s := openMmapT(t, path)
	defer s.Close()
	// Poison the resident source tree the file was written from.
	for i := range ft.Points.Data {
		ft.Points.Data[i] = math.NaN()
	}
	for i, q := range queries {
		got := query.KNNSearchPaged(s.Tree(), s, q, 5)
		if got.Radius != want[i].Radius || len(got.Neighbors) != len(want[i].Neighbors) {
			t.Fatalf("query %d: mapped search disturbed by poisoned resident tree", i)
		}
		for _, nb := range got.Neighbors {
			for _, v := range nb {
				if math.IsNaN(v) {
					t.Fatalf("query %d: neighbor row read from the poisoned resident tree", i)
				}
			}
		}
	}
}

// TestBackendResolution pins Auto's choice, the env override, and the
// String/Parse vocabulary round-trip.
func TestBackendResolution(t *testing.T) {
	for _, b := range []Backend{BackendAuto, BackendReadAt, BackendMmap} {
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Fatalf("ParseBackend(%q) = %v, %v", b.String(), got, err)
		}
	}
	if _, err := ParseBackend("bogus"); err == nil {
		t.Fatal("ParseBackend accepted bogus input")
	}

	ft := buildFlat(t, 100, 4, 0, 41)
	path := filepath.Join(t.TempDir(), "snap")
	if _, err := WriteFile(path, ft, 512); err != nil {
		t.Fatalf("write: %v", err)
	}
	s, err := Open(path) // Auto
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	wantAuto := BackendReadAt
	if MmapSupported() {
		wantAuto = BackendMmap
	}
	if s.Backend() != wantAuto {
		t.Fatalf("auto resolved to %v, want %v", s.Backend(), wantAuto)
	}
	s.Close()

	if got := ResolveBackend(BackendAuto); got != wantAuto {
		t.Fatalf("ResolveBackend(Auto) = %v, want %v", got, wantAuto)
	}
	if got := ResolveBackend(BackendReadAt); got != BackendReadAt {
		t.Fatalf("ResolveBackend(ReadAt) = %v", got)
	}

	t.Setenv(EnvBackend, "readat")
	if got := ResolveBackend(BackendAuto); got != BackendReadAt {
		t.Fatalf("ResolveBackend(Auto) under env override = %v", got)
	}
	s, err = Open(path)
	if err != nil {
		t.Fatalf("open with env override: %v", err)
	}
	if s.Backend() != BackendReadAt {
		t.Fatalf("env override ignored: resolved to %v", s.Backend())
	}
	s.Close()
	t.Setenv(EnvBackend, "")

	// Load must stay resident regardless of platform or env: its tree
	// outlives the snapshot handle.
	tr, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if tr.NumPoints != 100 {
		t.Fatalf("loaded %d points", tr.NumPoints)
	}
	q := make([]float64, 4)
	if res := query.KNNSearchFlat(tr, q, 1); len(res.Neighbors) != 1 {
		t.Fatal("tree from Load unusable after close")
	}
}

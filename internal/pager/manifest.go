package pager

// Sharded snapshot sets: a serving deployment with S ingest shards
// persists one snapshot file per shard plus a small checksummed
// manifest that names, for every shard, the exact file holding its
// current durable generation. Shard files are immutable once renamed
// into place — their names carry the publication generation that wrote
// them (ShardPath), and a republication of a shard writes a *new* file
// under the next generation's name — so the manifest is the single
// point of atomicity: readers recover exactly the shard set the last
// durable manifest names, and a crash between a shard-file write and
// the manifest write leaves an orphaned file the next publication
// sweeps, never a mixed generation.
//
// # Manifest format (version 1)
//
//	bytes 0..3    magic "HDSM"
//	4..7          version        u32 little endian
//	8..15         generation     u64 (the publication event that wrote
//	              this manifest)
//	16..19        dim            u32 (dimensionality of every shard)
//	20..23        shard count    u32
//	24..          per shard, 20 bytes each:
//	                generation   u64 (of the shard's current file;
//	                             0 = the shard has no durable file yet)
//	                bytes        u64 (exact size of that file)
//	                header CRC   u32 (the trailing CRC-32C of that
//	                             file's header page — FileSummary)
//	trailing 4    CRC-32C over everything above
//
// The whole manifest is covered by one CRC-32C, so a torn or
// bit-flipped manifest fails ReadManifest loudly. The per-shard header
// CRC lets recovery verify each shard file is byte-for-byte the one
// the manifest was written against (the header checksums every
// section's checksum) without rereading the file body.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

const (
	// ManifestMagic identifies a shard-set manifest file.
	ManifestMagic = "HDSM"
	// ManifestVersion is the current manifest format version.
	ManifestVersion = 1
	// MaxManifestShards bounds the shard count a manifest may claim, so
	// a corrupted count cannot drive huge allocations.
	MaxManifestShards = 4096

	manifestFixedBytes = 24
	manifestShardBytes = 20
)

// ManifestShard locates one shard's current durable snapshot file.
type ManifestShard struct {
	// Generation is the publication generation stamped into the shard
	// file's name (ShardPath); 0 means the shard has no durable file.
	Generation int64
	// Bytes is the exact size of the shard file.
	Bytes int64
	// HeaderCRC is the trailing CRC-32C of the shard file's header
	// page, as FileSummary reports it.
	HeaderCRC uint32
}

// Manifest is the decoded shard-set manifest.
type Manifest struct {
	// Generation is the publication event that wrote this manifest.
	Generation int64
	// Dim is the dimensionality of every shard's points.
	Dim int
	// Shards holds one entry per shard, in shard order.
	Shards []ManifestShard
}

// ShardPath derives the snapshot file path of one shard generation
// from the manifest path. The generation is part of the name on
// purpose: a shard file is written once and never modified, so the
// manifest's (shard, generation) reference either resolves to a
// complete file or to nothing — a mixed or half-written generation is
// unrepresentable.
func ShardPath(manifestPath string, shard int, gen int64) string {
	return fmt.Sprintf("%s.s%03d.g%d.hdsn", manifestPath, shard, gen)
}

// ShardFiles globs every shard snapshot file belonging to the
// manifest, current or orphaned.
func ShardFiles(manifestPath string) ([]string, error) {
	return filepath.Glob(manifestPath + ".s*.g*.hdsn")
}

// ParseShardPath inverts ShardPath: it extracts the shard index and
// generation from a file name ShardFiles returned. ok is false for
// names that do not parse (foreign files are left alone by sweeps).
func ParseShardPath(manifestPath, file string) (shard int, gen int64, ok bool) {
	rest, found := strings.CutPrefix(file, manifestPath+".s")
	if !found {
		return 0, 0, false
	}
	rest, found = strings.CutSuffix(rest, ".hdsn")
	if !found {
		return 0, 0, false
	}
	si, rest, found := strings.Cut(rest, ".g")
	if !found {
		return 0, 0, false
	}
	s, err := strconv.Atoi(si)
	if err != nil || s < 0 {
		return 0, 0, false
	}
	g, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || g < 1 {
		return 0, 0, false
	}
	return s, g, true
}

// EncodeManifest renders m into its checksummed binary form.
func EncodeManifest(m *Manifest) ([]byte, error) {
	if m.Generation < 1 {
		return nil, fmt.Errorf("pager: manifest generation %d < 1", m.Generation)
	}
	if m.Dim < 1 {
		return nil, fmt.Errorf("pager: manifest dimension %d < 1", m.Dim)
	}
	if len(m.Shards) < 1 || len(m.Shards) > MaxManifestShards {
		return nil, fmt.Errorf("pager: %d manifest shards outside [1, %d]", len(m.Shards), MaxManifestShards)
	}
	b := make([]byte, manifestFixedBytes+manifestShardBytes*len(m.Shards)+4)
	le := binary.LittleEndian
	copy(b[0:4], ManifestMagic)
	le.PutUint32(b[4:], ManifestVersion)
	le.PutUint64(b[8:], uint64(m.Generation))
	le.PutUint32(b[16:], uint32(m.Dim))
	le.PutUint32(b[20:], uint32(len(m.Shards)))
	for i, s := range m.Shards {
		if s.Generation < 0 || s.Generation > m.Generation {
			return nil, fmt.Errorf("pager: shard %d generation %d outside [0, %d]", i, s.Generation, m.Generation)
		}
		if s.Bytes < 0 {
			return nil, fmt.Errorf("pager: shard %d negative size %d", i, s.Bytes)
		}
		off := manifestFixedBytes + manifestShardBytes*i
		le.PutUint64(b[off:], uint64(s.Generation))
		le.PutUint64(b[off+8:], uint64(s.Bytes))
		le.PutUint32(b[off+16:], s.HeaderCRC)
	}
	le.PutUint32(b[len(b)-4:], crc32.Checksum(b[:len(b)-4], castagnoli))
	return b, nil
}

// DecodeManifest parses and fully verifies a manifest blob. Every
// corruption — wrong magic (including a snapshot file offered as a
// manifest), truncation, trailing garbage, a flipped bit anywhere, an
// implausible count — is an error, never a misread.
func DecodeManifest(b []byte) (*Manifest, error) {
	if len(b) < manifestFixedBytes+4 {
		return nil, fmt.Errorf("pager: file too short for a shard manifest (%d bytes)", len(b))
	}
	if string(b[0:4]) != ManifestMagic {
		if string(b[0:4]) == Magic {
			return nil, fmt.Errorf("pager: file is a single snapshot (magic %q), not a shard manifest — serve it unsharded", Magic)
		}
		return nil, fmt.Errorf("pager: not a shard manifest (magic %q)", b[0:4])
	}
	le := binary.LittleEndian
	if got, want := le.Uint32(b[len(b)-4:]), crc32.Checksum(b[:len(b)-4], castagnoli); got != want {
		return nil, fmt.Errorf("pager: manifest checksum mismatch (got %08x, want %08x)", got, want)
	}
	if v := le.Uint32(b[4:]); v != ManifestVersion {
		return nil, fmt.Errorf("pager: manifest version %d, this build reads version %d", v, ManifestVersion)
	}
	m := &Manifest{
		Generation: int64(le.Uint64(b[8:])),
		Dim:        int(le.Uint32(b[16:])),
	}
	n := int(le.Uint32(b[20:]))
	if n < 1 || n > MaxManifestShards {
		return nil, fmt.Errorf("pager: manifest claims %d shards outside [1, %d]", n, MaxManifestShards)
	}
	if want := manifestFixedBytes + manifestShardBytes*n + 4; len(b) != want {
		return nil, fmt.Errorf("pager: manifest is %d bytes, %d shards need exactly %d", len(b), n, want)
	}
	if m.Generation < 1 || m.Dim < 1 {
		return nil, fmt.Errorf("pager: implausible manifest (generation=%d dim=%d)", m.Generation, m.Dim)
	}
	m.Shards = make([]ManifestShard, n)
	for i := range m.Shards {
		off := manifestFixedBytes + manifestShardBytes*i
		s := ManifestShard{
			Generation: int64(le.Uint64(b[off:])),
			Bytes:      int64(le.Uint64(b[off+8:])),
			HeaderCRC:  le.Uint32(b[off+16:]),
		}
		if s.Generation < 0 || s.Generation > m.Generation || s.Bytes < 0 {
			return nil, fmt.Errorf("pager: implausible manifest shard %d (generation=%d bytes=%d)", i, s.Generation, s.Bytes)
		}
		m.Shards[i] = s
	}
	return m, nil
}

// WriteManifestAtomic publishes the manifest at path crash-safely with
// the same tmp+fsync+rename+dir-fsync protocol as WriteFileAtomic,
// returning the bytes written. A crash at any moment leaves the
// previous manifest or the new one — never a torn file.
func WriteManifestAtomic(path string, m *Manifest) (int64, error) {
	b, err := EncodeManifest(m)
	if err != nil {
		return 0, err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, err
	}
	tmpName := tmp.Name()
	_, err = tmp.Write(b)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmpName, path)
	}
	if err != nil {
		os.Remove(tmpName)
		return 0, err
	}
	if stale, _ := filepath.Glob(filepath.Join(dir, filepath.Base(path)+".tmp-*")); len(stale) > 0 {
		for _, s := range stale {
			os.Remove(s)
		}
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return int64(len(b)), nil
}

// ReadManifest opens, reads, and fully verifies the manifest at path.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return nil, fmt.Errorf("pager: read manifest %s: empty file", path)
	}
	m, err := DecodeManifest(b)
	if err != nil {
		return nil, fmt.Errorf("pager: read manifest %s: %w", path, err)
	}
	return m, nil
}

// FileSummary reads and verifies the header page of a snapshot file,
// returning the header's trailing CRC-32C and the file's size. The
// header checksums every section's checksum, so (size, header CRC)
// identifies the file's full content — it is what a manifest records
// per shard and what recovery re-checks before trusting a shard file.
func FileSummary(path string) (headerCRC uint32, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	b := make([]byte, headerBytes)
	if _, err := io.ReadFull(f, b); err != nil {
		return 0, 0, fmt.Errorf("pager: summary %s: short header read: %w", path, err)
	}
	if _, err := decodeHeader(b); err != nil {
		return 0, 0, fmt.Errorf("pager: summary %s: %w", path, err)
	}
	return binary.LittleEndian.Uint32(b[headerBytes-4:]), st.Size(), nil
}

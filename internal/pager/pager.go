package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"

	"hdidx/internal/disk"
	"hdidx/internal/mbr"
	"hdidx/internal/rtree"
	"hdidx/internal/vec"
)

// Snapshot is an open snapshot file. Open verifies the whole file
// (header, every section checksum, every structural invariant) and
// keeps a resident FlatTree for Tree(); alongside it, LeafRows is a
// pager read path that fetches leaf point rows with real page-granular
// ReadAt calls against the points section, counting seeks and
// transfers with the same adjacency rule as the simulated disk
// (internal/disk). That is what lets experiments compare the paper's
// *predicted* leaf accesses against page reads *measured* on a real
// filesystem: run the search once over the resident tree for
// bit-identical results, and once over the pager to count actual I/O.
//
// A Snapshot is safe for concurrent use.
type Snapshot struct {
	f    *os.File
	path string
	h    *header
	tree *rtree.FlatTree

	// pointsOff/pointsLen locate the points section in the file.
	pointsOff int64
	pointsLen int64

	mu       sync.Mutex
	counters disk.Counters
	lastPage int64 // last page touched by LeafRows; -1 = none

	bufPool sync.Pool // *[]byte page-run scratch for LeafRows
}

// Open opens and fully verifies a snapshot file. Any corruption —
// truncation, bit flips in the header or any section, version skew, or
// a foreign file — is reported as an error; Open never panics on bad
// bytes and never returns a tree that could panic a later search.
func Open(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := open(f, path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	return s, nil
}

func open(f *os.File, path string) (*Snapshot, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	hdrBuf := make([]byte, headerBytes)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), hdrBuf); err != nil {
		return nil, fmt.Errorf("file too short for a snapshot header (%d bytes)", size)
	}
	h, err := decodeHeader(hdrBuf)
	if err != nil {
		return nil, err
	}
	pb := int64(h.pageBytes)
	if size%pb != 0 {
		return nil, fmt.Errorf("truncated file: %d bytes is not a multiple of the %d-byte page", size, pb)
	}

	// The section table must list exactly the expected kinds in order,
	// with the expected lengths, laid out back to back on page
	// boundaries. Checking lengths against the header counts up front
	// means a truncated or resized section is caught before any decode.
	wantKinds := []uint32{secChildStart, secChildCount, secPtStart, secPtCount,
		secRectLo, secRectHi, secPoints}
	if h.prefilterBits > 0 {
		wantKinds = append(wantKinds, secCodes, secMarks)
	}
	if len(h.sections) != len(wantKinds) {
		return nil, fmt.Errorf("%d sections, want %d", len(h.sections), len(wantKinds))
	}
	wantLen := func(kind uint32) int64 {
		switch kind {
		case secChildStart, secChildCount, secPtStart, secPtCount:
			return int64(h.numNodes) * 4
		case secRectLo, secRectHi:
			return int64(h.numNodes) * int64(h.dim) * 8
		case secPoints:
			return int64(h.numPoints) * int64(h.dim) * 8
		case secCodes:
			return int64(h.dim) * int64(h.numPoints)
		case secMarks:
			return int64(h.dim) * int64((1<<h.prefilterBits)+1) * 8
		}
		return -1
	}
	offset := pb
	for i, sec := range h.sections {
		if sec.kind != wantKinds[i] {
			return nil, fmt.Errorf("section %d has kind %d, want %d", i, sec.kind, wantKinds[i])
		}
		if want := wantLen(sec.kind); sec.length != want {
			return nil, fmt.Errorf("section %d (kind %d) is %d bytes, header counts imply %d",
				i, sec.kind, sec.length, want)
		}
		if sec.offset != offset {
			return nil, fmt.Errorf("section %d (kind %d) at offset %d, want %d", i, sec.kind, sec.offset, offset)
		}
		offset += pagePad(sec.length, h.pageBytes)
		if offset > size {
			return nil, fmt.Errorf("truncated file: section %d (kind %d) ends at %d of %d bytes",
				i, sec.kind, offset, size)
		}
	}

	// Read and checksum every section, then hand the arrays to
	// AssembleFlat for the structural invariants.
	readSection := func(sec sectionEntry) ([]byte, error) {
		b := make([]byte, sec.length)
		if _, err := f.ReadAt(b, sec.offset); err != nil {
			return nil, fmt.Errorf("section kind %d: %w", sec.kind, err)
		}
		if got := crc32.Checksum(b, castagnoli); got != sec.crc {
			return nil, fmt.Errorf("section kind %d checksum mismatch (got %08x, want %08x)",
				sec.kind, got, sec.crc)
		}
		return b, nil
	}
	var (
		i32s                 [4][]int32
		rectLo, rectHi       []float64
		points, marks        []float64
		codes                []byte
		pointsOff, pointsLen int64
	)
	for i, sec := range h.sections {
		b, err := readSection(sec)
		if err != nil {
			return nil, err
		}
		switch {
		case i < 4:
			i32s[i] = decodeInt32s(b)
		case sec.kind == secRectLo:
			rectLo = decodeFloat64s(b)
		case sec.kind == secRectHi:
			rectHi = decodeFloat64s(b)
		case sec.kind == secPoints:
			points = decodeFloat64s(b)
			pointsOff, pointsLen = sec.offset, sec.length
		case sec.kind == secCodes:
			codes = b
		case sec.kind == secMarks:
			marks = decodeFloat64s(b)
		}
	}
	rects, err := assembleRects(rectLo, rectHi, h.numNodes, h.dim)
	if err != nil {
		return nil, err
	}
	mat := vec.Matrix{Data: points, N: h.numPoints, Dim: h.dim}
	tree, err := rtree.AssembleFlat(h.dim, h.height, h.numPoints, h.numLeaves,
		i32s[0], i32s[1], i32s[2], i32s[3], rects, mat,
		h.prefilterBits, codes, marks)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		f:         f,
		path:      path,
		h:         h,
		tree:      tree,
		pointsOff: pointsOff,
		pointsLen: pointsLen,
		lastPage:  -1,
	}, nil
}

// assembleRects rebuilds the RectSet from its corner columns,
// validating lengths (the mbr constructor panics on mismatch, and
// these bytes are untrusted).
func assembleRects(lo, hi []float64, n, dim int) (*mbr.RectSet, error) {
	if n == 0 {
		if len(lo) != 0 || len(hi) != 0 {
			return nil, fmt.Errorf("rectangle corners present for an empty tree")
		}
		return mbr.RectSetFromCorners(nil, nil, 0, 0), nil
	}
	if len(lo) != n*dim || len(hi) != n*dim {
		return nil, fmt.Errorf("rectangle corner columns of %d/%d values for %d nodes of dimension %d",
			len(lo), len(hi), n, dim)
	}
	return mbr.RectSetFromCorners(lo, hi, n, dim), nil
}

func decodeInt32s(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func decodeFloat64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// Tree returns the verified resident FlatTree. It remains valid after
// Close; searches over it never touch the file.
func (s *Snapshot) Tree() *rtree.FlatTree { return s.tree }

// Path returns the file path the snapshot was opened from.
func (s *Snapshot) Path() string { return s.path }

// PageBytes returns the page size the file was written with.
func (s *Snapshot) PageBytes() int { return s.h.pageBytes }

// Pages returns the total number of pages in the file occupied by the
// points section — the quantity the paper's leaf-access predictions
// are ultimately priced against.
func (s *Snapshot) Pages() int64 { return pagePad(s.pointsLen, s.h.pageBytes) / int64(s.h.pageBytes) }

// LeafRows reads point rows [start, end) from the points section with
// real page-granular I/O, decoding them into buf (grown as needed) in
// the same row-major layout as the resident matrix. The rows of one
// call come from one contiguous ReadAt spanning whole pages; the
// counters charge one transfer per page and one seek when the first
// page is not adjacent to the last page previously read, mirroring the
// simulated disk's accounting. The returned slice aliases buf and is
// overwritten by the next call with the same buf.
//
// The file was fully verified at Open, so a read failure here is an
// environmental I/O error (device gone, file unlinked and truncated
// underfoot); LeafRows panics on it rather than corrupting results.
func (s *Snapshot) LeafRows(start, end int, buf []float64) []float64 {
	dim := s.h.dim
	n := end - start
	if n < 0 || start < 0 || end > s.h.numPoints {
		panic(fmt.Sprintf("pager: rows [%d, %d) of %d points", start, end, s.h.numPoints))
	}
	if n == 0 {
		return buf[:0]
	}
	pb := int64(s.h.pageBytes)
	byteOff := s.pointsOff + int64(start)*int64(dim)*8
	byteLen := int64(n) * int64(dim) * 8
	firstPage := byteOff / pb
	lastPage := (byteOff + byteLen - 1) / pb

	s.mu.Lock()
	if firstPage != s.lastPage && firstPage != s.lastPage+1 {
		s.counters.Seeks++
	}
	s.counters.Transfers += lastPage - firstPage + 1
	s.counters.Misses += lastPage - firstPage + 1
	s.lastPage = lastPage
	s.mu.Unlock()

	// Fetch the whole page run, then decode the row span out of it.
	runLen := int((lastPage - firstPage + 1) * pb)
	var raw []byte
	if p, _ := s.bufPool.Get().(*[]byte); p != nil && cap(*p) >= runLen {
		raw = (*p)[:runLen]
	} else {
		raw = make([]byte, runLen)
	}
	if _, err := s.f.ReadAt(raw, firstPage*pb); err != nil {
		panic(fmt.Sprintf("pager: read pages [%d, %d] of %s: %v", firstPage, lastPage, s.path, err))
	}
	skip := byteOff - firstPage*pb
	want := n * dim
	if cap(buf) < want {
		buf = make([]float64, want)
	}
	out := buf[:want]
	src := raw[skip : skip+byteLen]
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
	s.bufPool.Put(&raw)
	return out
}

// Counters returns the accumulated pager I/O counters. Snapshot
// implements obs.CounterSource, so a pager can sit behind an obs.Trace
// and have its page reads show up in phase reports exactly like the
// simulated disk's.
func (s *Snapshot) Counters() disk.Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// ResetCounters zeroes the counters and forgets the head position, so
// the next read is charged a seek.
func (s *Snapshot) ResetCounters() {
	s.mu.Lock()
	s.counters = disk.Counters{}
	s.lastPage = -1
	s.mu.Unlock()
}

// Close releases the file handle. The resident tree stays usable;
// LeafRows panics after Close.
func (s *Snapshot) Close() error { return s.f.Close() }

// Load opens, verifies, and closes path, returning just the resident
// tree — the convenience entry point for callers (server recovery, the
// facade) that want the tree without the pager read path.
func Load(path string) (*rtree.FlatTree, error) {
	s, err := Open(path)
	if err != nil {
		return nil, err
	}
	t := s.Tree()
	if err := s.Close(); err != nil {
		return nil, err
	}
	return t, nil
}

package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"

	"hdidx/internal/disk"
	"hdidx/internal/mbr"
	"hdidx/internal/rtree"
	"hdidx/internal/vec"
)

// Snapshot is an open snapshot file. Open verifies the whole file
// (header, every section checksum, every structural invariant) before
// returning; how the tree is then served depends on the Backend.
//
// With BackendReadAt (the original pager) the tree is resident:
// Tree() is a heap copy that stays valid after Close, and LeafRows
// fetches leaf point rows with real page-granular ReadAt calls
// against the points section, counting seeks and transfers with the
// same adjacency rule as the simulated disk (internal/disk).
//
// With BackendMmap the tree is served zero-copy from a read-only
// mapping of the file: Tree()'s arrays and every slice LeafRows
// returns are views into the map, valid only until Close (which
// unmaps), and page touches are counted at fault granularity — the
// first touch of each points page since ResetCounters is a
// transfer+miss, later touches are hits.
//
// Either way the counters let experiments compare the paper's
// *predicted* leaf accesses against page I/O *measured* on a real
// filesystem. A Snapshot is safe for concurrent use.
type Snapshot struct {
	f       *os.File // nil for the mmap backend (the mapping outlives the fd)
	path    string
	h       *header
	tree    *rtree.FlatTree
	backend Backend

	// mapped is the whole-file mapping and points its zero-copy
	// points-section view (mmap backend only).
	mapped []byte
	points []float64

	// pointsOff/pointsLen locate the points section in the file.
	pointsOff int64
	pointsLen int64

	mu       sync.Mutex
	counters disk.Counters
	lastPage int64 // last page touched (ReadAt) or faulted (mmap); -1 = none

	// faulted is the touched-page bitmap over the points section's
	// pages (mmap backend): a set bit means the page was charged as a
	// fault since the last ResetCounters.
	faulted []uint64

	closeOnce sync.Once
	closeErr  error

	bufPool sync.Pool // *[]byte page-run scratch for ReadAt LeafRows
}

// Options configures OpenWith.
type Options struct {
	// Backend selects the read path; see the Backend constants. The
	// zero value is BackendAuto.
	Backend Backend
}

// Open opens and fully verifies a snapshot file with BackendAuto. Any
// corruption — truncation, bit flips in the header or any section,
// version skew, or a foreign file — is reported as an error; Open
// never panics on bad bytes and never returns a tree that could panic
// a later search.
func Open(path string) (*Snapshot, error) { return OpenWith(path, Options{}) }

// OpenWith is Open with an explicit backend choice. BackendAuto picks
// mmap where supported and falls back to ReadAt when the map cannot be
// established; an explicit BackendMmap fails with ErrMmapUnavailable
// instead of falling back.
func OpenWith(path string, opts Options) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := open(f, path, opts)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("pager: open %s: %w", path, err)
	}
	if s.backend == BackendMmap {
		// The mapping outlives the descriptor; holding no fd means a
		// long-lived served snapshot costs one mapping, zero handles.
		f.Close()
		s.f = nil
	}
	return s, nil
}

func open(f *os.File, path string, opts Options) (*Snapshot, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	// Explicit size gates before any read: a zero-length or sub-header
	// file is a clean, descriptive error — never an io.EOF surprise
	// from a short read.
	if size == 0 {
		return nil, fmt.Errorf("empty file: not a snapshot")
	}
	if size < int64(headerBytes) {
		// A shard manifest is smaller than a snapshot header; sniff its
		// magic so cross-format confusion names the format instead of
		// reporting a bare size mismatch.
		if size >= 4 {
			var magic [4]byte
			if _, err := f.ReadAt(magic[:], 0); err == nil && string(magic[:]) == ManifestMagic {
				return nil, fmt.Errorf("file is a shard manifest (magic %q), not a snapshot — open it with ReadManifest", ManifestMagic)
			}
		}
		return nil, fmt.Errorf("file too short for a snapshot header (%d bytes, need %d)", size, headerBytes)
	}
	hdrBuf := make([]byte, headerBytes)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), hdrBuf); err != nil {
		return nil, fmt.Errorf("reading snapshot header: %v", err)
	}
	h, err := decodeHeader(hdrBuf)
	if err != nil {
		return nil, err
	}
	pb := int64(h.pageBytes)
	if size%pb != 0 {
		return nil, fmt.Errorf("truncated file: %d bytes is not a multiple of the %d-byte page", size, pb)
	}

	// The section table must list exactly the expected kinds in order,
	// with the expected lengths, laid out back to back on page
	// boundaries. Checking lengths against the header counts up front
	// means a truncated or resized section is caught before any decode.
	wantKinds := []uint32{secChildStart, secChildCount, secPtStart, secPtCount,
		secRectLo, secRectHi, secPoints}
	if h.prefilterBits > 0 {
		wantKinds = append(wantKinds, secCodes, secMarks)
	}
	if len(h.sections) != len(wantKinds) {
		return nil, fmt.Errorf("%d sections, want %d", len(h.sections), len(wantKinds))
	}
	wantLen := func(kind uint32) int64 {
		switch kind {
		case secChildStart, secChildCount, secPtStart, secPtCount:
			return int64(h.numNodes) * 4
		case secRectLo, secRectHi:
			return int64(h.numNodes) * int64(h.dim) * 8
		case secPoints:
			return int64(h.numPoints) * int64(h.dim) * 8
		case secCodes:
			return int64(h.dim) * int64(h.numPoints)
		case secMarks:
			return int64(h.dim) * int64((1<<h.prefilterBits)+1) * 8
		}
		return -1
	}
	offset := pb
	for i, sec := range h.sections {
		if sec.kind != wantKinds[i] {
			return nil, fmt.Errorf("section %d has kind %d, want %d", i, sec.kind, wantKinds[i])
		}
		if want := wantLen(sec.kind); sec.length != want {
			return nil, fmt.Errorf("section %d (kind %d) is %d bytes, header counts imply %d",
				i, sec.kind, sec.length, want)
		}
		if sec.offset != offset {
			return nil, fmt.Errorf("section %d (kind %d) at offset %d, want %d", i, sec.kind, sec.offset, offset)
		}
		offset += pagePad(sec.length, h.pageBytes)
		if offset > size {
			return nil, fmt.Errorf("truncated file: section %d (kind %d) ends at %d of %d bytes",
				i, sec.kind, offset, size)
		}
	}

	backend, canFallBack := resolveBackend(opts.Backend)
	if backend == BackendMmap {
		s, merr := openMmap(f, path, h, size)
		switch {
		case merr == nil:
			return s, nil
		case errors.Is(merr, ErrMmapUnavailable) && canFallBack:
			// Auto choice and the map could not be established —
			// graceful fallback to the resident ReadAt path below.
		default:
			return nil, merr
		}
	}

	// Read and checksum every section, then hand the arrays to
	// AssembleFlat for the structural invariants.
	readSection := func(sec sectionEntry) ([]byte, error) {
		b := make([]byte, sec.length)
		if _, err := f.ReadAt(b, sec.offset); err != nil {
			return nil, fmt.Errorf("section kind %d: %w", sec.kind, err)
		}
		if got := crc32.Checksum(b, castagnoli); got != sec.crc {
			return nil, fmt.Errorf("section kind %d checksum mismatch (got %08x, want %08x)",
				sec.kind, got, sec.crc)
		}
		return b, nil
	}
	var (
		i32s                 [4][]int32
		rectLo, rectHi       []float64
		points, marks        []float64
		codes                []byte
		pointsOff, pointsLen int64
	)
	for i, sec := range h.sections {
		b, err := readSection(sec)
		if err != nil {
			return nil, err
		}
		switch {
		case i < 4:
			i32s[i] = decodeInt32s(b)
		case sec.kind == secRectLo:
			rectLo = decodeFloat64s(b)
		case sec.kind == secRectHi:
			rectHi = decodeFloat64s(b)
		case sec.kind == secPoints:
			points = decodeFloat64s(b)
			pointsOff, pointsLen = sec.offset, sec.length
		case sec.kind == secCodes:
			codes = b
		case sec.kind == secMarks:
			marks = decodeFloat64s(b)
		}
	}
	rects, err := assembleRects(rectLo, rectHi, h.numNodes, h.dim)
	if err != nil {
		return nil, err
	}
	mat := vec.Matrix{Data: points, N: h.numPoints, Dim: h.dim}
	tree, err := rtree.AssembleFlat(h.dim, h.height, h.numPoints, h.numLeaves,
		i32s[0], i32s[1], i32s[2], i32s[3], rects, mat,
		h.prefilterBits, codes, marks)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		f:         f,
		path:      path,
		h:         h,
		tree:      tree,
		backend:   BackendReadAt,
		pointsOff: pointsOff,
		pointsLen: pointsLen,
		lastPage:  -1,
	}, nil
}

// assembleRects rebuilds the RectSet from its corner columns,
// validating lengths (the mbr constructor panics on mismatch, and
// these bytes are untrusted).
func assembleRects(lo, hi []float64, n, dim int) (*mbr.RectSet, error) {
	if n == 0 {
		if len(lo) != 0 || len(hi) != 0 {
			return nil, fmt.Errorf("rectangle corners present for an empty tree")
		}
		return mbr.RectSetFromCorners(nil, nil, 0, 0), nil
	}
	if len(lo) != n*dim || len(hi) != n*dim {
		return nil, fmt.Errorf("rectangle corner columns of %d/%d values for %d nodes of dimension %d",
			len(lo), len(hi), n, dim)
	}
	return mbr.RectSetFromCorners(lo, hi, n, dim), nil
}

func decodeInt32s(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

func decodeFloat64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// Tree returns the verified FlatTree. With BackendReadAt it is
// resident and remains valid after Close; with BackendMmap its arrays
// are views into the mapping and must not be used after Close unmaps
// them.
func (s *Snapshot) Tree() *rtree.FlatTree { return s.tree }

// Backend returns the read path this snapshot was opened with (never
// BackendAuto — Open resolves the choice).
func (s *Snapshot) Backend() Backend { return s.backend }

// ZeroCopy reports whether LeafRows returns views into the snapshot's
// mapped memory rather than buf-backed copies. Callers that recycle
// returned slices as scratch buffers (the paged search kernels) must
// not do so when this is true.
func (s *Snapshot) ZeroCopy() bool { return s.backend == BackendMmap }

// Path returns the file path the snapshot was opened from.
func (s *Snapshot) Path() string { return s.path }

// PageBytes returns the page size the file was written with.
func (s *Snapshot) PageBytes() int { return s.h.pageBytes }

// Pages returns the total number of pages in the file occupied by the
// points section — the quantity the paper's leaf-access predictions
// are ultimately priced against.
func (s *Snapshot) Pages() int64 { return pagePad(s.pointsLen, s.h.pageBytes) / int64(s.h.pageBytes) }

// LeafRows returns point rows [start, end) of the points section in
// the same row-major layout as the resident matrix.
//
// With BackendReadAt the rows are read with real page-granular I/O —
// one contiguous ReadAt spanning whole pages — and decoded into buf
// (grown as needed); the counters charge one transfer per page and one
// seek when the first page is not adjacent to the last page previously
// read, mirroring the simulated disk's accounting. The returned slice
// aliases buf and is overwritten by the next call with the same buf.
//
// With BackendMmap the rows are a zero-copy view straight into the
// mapped points section — no syscall, no decode, buf is ignored — and
// the counters charge at fault granularity: a page's first touch since
// ResetCounters is a transfer+miss (plus a seek when not adjacent to
// the previously faulted page), later touches are hits. The view stays
// readable until Close; callers that retain rows must still copy them
// (the LeafSource contract).
//
// The file was fully verified at Open, so a read failure here is an
// environmental I/O error (device gone, file unlinked and truncated
// underfoot); LeafRows panics on it rather than corrupting results.
func (s *Snapshot) LeafRows(start, end int, buf []float64) []float64 {
	dim := s.h.dim
	n := end - start
	if n < 0 || start < 0 || end > s.h.numPoints {
		panic(fmt.Sprintf("pager: rows [%d, %d) of %d points", start, end, s.h.numPoints))
	}
	if n == 0 {
		return buf[:0]
	}
	if s.backend == BackendMmap {
		return s.leafRowsMmap(start, end)
	}
	pb := int64(s.h.pageBytes)
	byteOff := s.pointsOff + int64(start)*int64(dim)*8
	byteLen := int64(n) * int64(dim) * 8
	firstPage := byteOff / pb
	lastPage := (byteOff + byteLen - 1) / pb

	s.mu.Lock()
	if firstPage != s.lastPage && firstPage != s.lastPage+1 {
		s.counters.Seeks++
	}
	s.counters.Transfers += lastPage - firstPage + 1
	s.counters.Misses += lastPage - firstPage + 1
	s.lastPage = lastPage
	s.mu.Unlock()

	// Fetch the whole page run, then decode the row span out of it.
	runLen := int((lastPage - firstPage + 1) * pb)
	var raw []byte
	if p, _ := s.bufPool.Get().(*[]byte); p != nil && cap(*p) >= runLen {
		raw = (*p)[:runLen]
	} else {
		raw = make([]byte, runLen)
	}
	if _, err := s.f.ReadAt(raw, firstPage*pb); err != nil {
		panic(fmt.Sprintf("pager: read pages [%d, %d] of %s: %v", firstPage, lastPage, s.path, err))
	}
	skip := byteOff - firstPage*pb
	want := n * dim
	if cap(buf) < want {
		buf = make([]float64, want)
	}
	out := buf[:want]
	src := raw[skip : skip+byteLen]
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
	s.bufPool.Put(&raw)
	return out
}

// leafRowsMmap serves rows [start, end) as a view into the mapped
// points section, charging first-touch faults. Bounds were checked by
// LeafRows.
func (s *Snapshot) leafRowsMmap(start, end int) []float64 {
	dim := s.h.dim
	pb := int64(s.h.pageBytes)
	byteOff := s.pointsOff + int64(start)*int64(dim)*8
	byteLen := int64(end-start) * int64(dim) * 8
	firstPage := byteOff / pb
	lastPage := (byteOff + byteLen - 1) / pb
	base := s.pointsOff / pb

	s.mu.Lock()
	for p := firstPage; p <= lastPage; p++ {
		idx := int(p - base)
		if s.faulted[idx>>6]&(1<<(idx&63)) != 0 {
			s.counters.Hits++
			continue
		}
		s.faulted[idx>>6] |= 1 << (idx & 63)
		if p != s.lastPage+1 {
			s.counters.Seeks++
		}
		s.counters.Transfers++
		s.counters.Misses++
		s.lastPage = p
	}
	s.mu.Unlock()
	return s.points[start*dim : end*dim]
}

// Counters returns the accumulated pager I/O counters. Snapshot
// implements obs.CounterSource, so a pager can sit behind an obs.Trace
// and have its page reads show up in phase reports exactly like the
// simulated disk's.
func (s *Snapshot) Counters() disk.Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// ResetCounters zeroes the counters and forgets the head position, so
// the next read is charged a seek. For the mmap backend it also clears
// the touched-page bitmap: the fault accounting models a page cache
// that is cold at reset (each page's first touch per measured workload
// is counted once), which is what makes measured mmap cost comparable
// to the simulator's — the kernel's real residency is not observable
// per touch.
func (s *Snapshot) ResetCounters() {
	s.mu.Lock()
	s.counters = disk.Counters{}
	s.lastPage = -1
	for i := range s.faulted {
		s.faulted[i] = 0
	}
	s.mu.Unlock()
}

// Close releases the snapshot's resources, exactly once (further calls
// return the first result). With BackendReadAt it closes the file
// handle; the resident tree stays usable and only LeafRows dies. With
// BackendMmap it unmaps the file — the tree and every row view become
// invalid, so Close must happen strictly after the last reader is done
// (the serving layer ties it to the snapshot-retire protocol).
func (s *Snapshot) Close() error {
	s.closeOnce.Do(func() {
		if s.mapped != nil {
			s.closeErr = munmapFile(s.mapped)
			s.mapped = nil
		}
		if s.f != nil {
			if err := s.f.Close(); s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// Load opens, verifies, and closes path, returning just the resident
// tree — the convenience entry point for callers (server recovery, the
// facade) that want the tree without the pager read path. It always
// uses the ReadAt backend: the returned tree must outlive the file
// handle, which a mapped tree cannot.
func Load(path string) (*rtree.FlatTree, error) {
	s, err := OpenWith(path, Options{Backend: BackendReadAt})
	if err != nil {
		return nil, err
	}
	t := s.Tree()
	if err := s.Close(); err != nil {
		return nil, err
	}
	return t, nil
}

package pager

import (
	"errors"
	"fmt"
	"os"
	"unsafe"
)

// Backend selects how an open Snapshot reads the snapshot file.
//
// BackendReadAt is the original pager: every section is read, decoded,
// and checksummed into resident heap arrays at Open, and LeafRows
// fetches leaf pages with page-granular ReadAt calls into pooled copy
// buffers. The whole tree is materialized in memory.
//
// BackendMmap maps the file read-only and serves everything straight
// from the mapping: the directory arrays (child ranges, RectSet corner
// columns, prefilter codes and marks) are reinterpreted in place —
// nothing is materialized, so trees larger than memory open — and
// LeafRows returns zero-copy views into the mapped points section (no
// syscall, no memcpy per leaf). Page touches are accounted at fault
// granularity: the first touch of each points page since the last
// ResetCounters is a transfer+miss, re-touches are hits.
//
// BackendAuto (the zero value) picks Mmap where the platform supports
// it (little-endian linux/darwin) and falls back to ReadAt gracefully
// when the platform lacks it or the map cannot be established. The
// HDIDX_PAGER_BACKEND environment variable ("readat", "mmap", "auto")
// overrides an Auto choice — CI uses it to force the ReadAt path so
// both backends run under the race detector.
type Backend int

const (
	// BackendAuto selects Mmap when available, ReadAt otherwise.
	BackendAuto Backend = iota
	// BackendReadAt is the resident pager with ReadAt leaf fetches.
	BackendReadAt
	// BackendMmap serves zero-copy from a read-only file mapping.
	BackendMmap
)

// EnvBackend is the environment variable that overrides BackendAuto.
const EnvBackend = "HDIDX_PAGER_BACKEND"

// ErrMmapUnavailable reports that the mmap backend could not be used:
// the platform lacks it, the host is big-endian (the format is
// little-endian and the map is reinterpreted in place), or the mmap
// syscall itself failed. OpenWith with BackendAuto falls back to
// ReadAt on this error; with an explicit BackendMmap it is returned.
// Test with errors.Is.
var ErrMmapUnavailable = errors.New("pager: mmap backend unavailable")

// String renders the backend name ParseBackend accepts.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendReadAt:
		return "readat"
	case BackendMmap:
		return "mmap"
	}
	return fmt.Sprintf("backend(%d)", int(b))
}

// ParseBackend parses "auto", "readat", or "mmap" (the CLI flag and
// environment-variable vocabulary).
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "auto", "":
		return BackendAuto, nil
	case "readat":
		return BackendReadAt, nil
	case "mmap":
		return BackendMmap, nil
	}
	return BackendAuto, fmt.Errorf("pager: unknown backend %q (want auto, readat, or mmap)", s)
}

// MmapSupported reports whether the mmap backend can work on this
// platform (it can still fail at Open time if the syscall does).
func MmapSupported() bool { return mmapSupported && hostLittleEndian() }

// ResolveBackend reports the backend b resolves to on this host: an
// explicit choice is returned unchanged; Auto applies the environment
// override and the platform default. Layers above the pager (the serve
// core, the facade) use it to decide up front whether publication will
// be mmap-backed.
func ResolveBackend(b Backend) Backend {
	rb, _ := resolveBackend(b)
	return rb
}

// resolveBackend applies the environment override and the Auto
// default. The second result reports whether the choice may still fall
// back to ReadAt when mmap fails (true only for a genuine Auto).
func resolveBackend(b Backend) (Backend, bool) {
	if b != BackendAuto {
		return b, false
	}
	if env := os.Getenv(EnvBackend); env != "" {
		if eb, err := ParseBackend(env); err == nil && eb != BackendAuto {
			return eb, false
		}
	}
	if MmapSupported() {
		return BackendMmap, true
	}
	return BackendReadAt, false
}

// hostLittleEndian reports the byte order of this host. The snapshot
// format is little-endian; the mmap backend reinterprets mapped bytes
// in place and therefore requires a little-endian host (every other
// host still reads snapshots through the decoding ReadAt backend).
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

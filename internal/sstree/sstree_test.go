package sstree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hdidx/internal/dataset"
	"hdidx/internal/query"
	"hdidx/internal/stats"
	"hdidx/internal/vec"
)

func uniformPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	return dataset.GenerateUniform("u", n, dim, rng).Points
}

func clusteredPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	spec := dataset.Spec{Name: "c", N: n, Dim: dim, Clusters: 10, VarianceDecay: 0.9, ClusterStd: 0.1}
	return spec.Generate(rng).Points
}

func TestBuildValidates(t *testing.T) {
	pts := uniformPoints(3000, 8, 1)
	tr := Build(pts, BuildParams{LeafCap: 32, DirCap: 15})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumPoints != 3000 {
		t.Errorf("NumPoints = %d", tr.NumPoints)
	}
	if tr.NumLeaves() < 80 || tr.NumLeaves() > 110 {
		t.Errorf("leaves = %d, want ~94", tr.NumLeaves())
	}
}

func TestBuildSingleLeaf(t *testing.T) {
	pts := uniformPoints(5, 3, 2)
	tr := Build(pts, BuildParams{LeafCap: 10, DirCap: 4})
	if tr.Height() != 1 || tr.NumLeaves() != 1 {
		t.Fatalf("height=%d leaves=%d", tr.Height(), tr.NumLeaves())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(nil, BuildParams{LeafCap: 10, DirCap: 4})
}

func TestMinDist(t *testing.T) {
	n := &Node{Centroid: []float64{0, 0}, Radius: 1}
	if got := n.MinDist([]float64{0.5, 0}); got != 0 {
		t.Errorf("inside MinDist = %v", got)
	}
	if got := n.MinDist([]float64{3, 0}); math.Abs(got-2) > 1e-12 {
		t.Errorf("outside MinDist = %v, want 2", got)
	}
}

func TestIntersectsSphere(t *testing.T) {
	n := &Node{Centroid: []float64{0, 0}, Radius: 1}
	if !n.IntersectsSphere([]float64{2, 0}, 1) {
		t.Error("tangent spheres should intersect")
	}
	if n.IntersectsSphere([]float64{2.5, 0}, 1) {
		t.Error("disjoint spheres should not intersect")
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	data := clusteredPoints(2000, 8, 3)
	tr := Build(data, BuildParams{LeafCap: 32, DirCap: 15})
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		q := data[rng.Intn(len(data))]
		for _, k := range []int{1, 5, 21} {
			want := query.KNNBruteRadius(data, q, k)
			got := KNNSearch(tr, q, k)
			if math.Abs(got.Radius-want) > 1e-9 {
				t.Fatalf("k=%d: radius %v, want %v", k, got.Radius, want)
			}
			if got.LeafAccesses < 1 {
				t.Fatal("no leaves accessed")
			}
		}
	}
}

func TestKNNPanicsOnBadK(t *testing.T) {
	tr := Build(uniformPoints(10, 2, 5), BuildParams{LeafCap: 4, DirCap: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KNNSearch(tr, []float64{0, 0}, 0)
}

func TestInsertBounded(t *testing.T) {
	var best []float64
	for _, d := range []float64{5, 1, 3, 2, 4} {
		best = insertBounded(best, d, 3)
	}
	want := []float64{1, 2, 3}
	if len(best) != 3 {
		t.Fatalf("len = %d", len(best))
	}
	for i := range want {
		if best[i] != want[i] {
			t.Errorf("best[%d] = %v, want %v", i, best[i], want[i])
		}
	}
}

// Property: the SS-tree k-NN radius equals brute force for random
// data, parameters, and k.
func TestKNNProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(500)
		dim := 1 + r.Intn(8)
		data := dataset.GenerateUniform("u", n, dim, r).Points
		tr := Build(data, BuildParams{
			LeafCap: 2 + r.Float64()*30,
			DirCap:  2 + float64(r.Intn(14)),
		})
		if err := tr.Validate(); err != nil {
			return false
		}
		k := 1 + r.Intn(10)
		q := make([]float64, dim)
		for i := range q {
			q[i] = r.Float64()
		}
		want := query.KNNBruteRadius(data, q, k)
		return math.Abs(KNNSearch(tr, q, k).Radius-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSphereCompensationFactorLimits(t *testing.T) {
	if got := SphereCompensationFactor(32, 1, 8); math.Abs(got-1) > 1e-12 {
		t.Errorf("factor at zeta=1 = %v, want 1", got)
	}
	if got := SphereCompensationFactor(32, 0.1, 8); got <= 1 {
		t.Errorf("factor = %v, want > 1", got)
	}
	// Monotone decreasing in zeta.
	prev := math.Inf(1)
	for _, z := range []float64{0.1, 0.3, 0.5, 0.8, 1.0} {
		f := SphereCompensationFactor(32, z, 8)
		if f > prev {
			t.Errorf("factor not decreasing at zeta=%v", z)
		}
		prev = f
	}
	if got := SphereCompensationFactor(0.5, 0.5, 8); got != 1 {
		t.Errorf("degenerate capacity factor = %v, want 1", got)
	}
}

// Monte Carlo check of the sphere compensation derivation: the
// expected max distance of n uniform points in a d-ball is
// R*n*d/(n*d+1).
func TestSphereShrinkageMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const d, n, trials = 4, 16, 3000
	var sum float64
	for tr := 0; tr < trials; tr++ {
		var max float64
		for i := 0; i < n; i++ {
			// Uniform point in the unit d-ball via normalized Gaussian
			// and radius U^(1/d).
			g := make([]float64, d)
			for j := range g {
				g[j] = rng.NormFloat64()
			}
			norm := vec.Norm(g)
			r := math.Pow(rng.Float64(), 1.0/d)
			dist := 0.0
			for j := range g {
				v := g[j] / norm * r
				dist += v * v
			}
			if dist > max {
				max = dist
			}
		}
		sum += math.Sqrt(max)
	}
	got := sum / trials
	want := float64(n*d) / float64(n*d+1)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("E[max radius] = %v, derivation says %v", got, want)
	}
}

func TestPredictAccuracyClustered(t *testing.T) {
	data := clusteredPoints(15000, 16, 7)
	g := NewGeometry(16)
	rng := rand.New(rand.NewSource(8))
	queryPoints := make([][]float64, 60)
	for i := range queryPoints {
		queryPoints[i] = data[rng.Intn(len(data))]
	}
	spheres := query.ComputeSpheres(data, queryPoints, 21)

	cp := make([][]float64, len(data))
	copy(cp, data)
	tree := Build(cp, g.Params())
	measured := stats.Mean(MeasureLeafAccesses(tree, spheres))

	p, err := Predict(data, 0.2, true, g, spheres, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	re := stats.RelativeError(p.Mean, measured)
	if math.Abs(re) > 0.25 {
		t.Errorf("SS-tree prediction error %+.2f (pred %.1f, meas %.1f)", re, p.Mean, measured)
	}
}

func TestPredictFullSampleExact(t *testing.T) {
	data := clusteredPoints(4000, 8, 10)
	g := NewGeometry(8)
	rng := rand.New(rand.NewSource(11))
	queryPoints := make([][]float64, 20)
	for i := range queryPoints {
		queryPoints[i] = data[rng.Intn(len(data))]
	}
	spheres := query.ComputeSpheres(data, queryPoints, 5)
	cp := make([][]float64, len(data))
	copy(cp, data)
	tree := Build(cp, g.Params())
	measured := MeasureLeafAccesses(tree, spheres)
	p, err := Predict(data, 1, true, g, spheres, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range measured {
		if p.PerQuery[i] != measured[i] {
			t.Fatalf("query %d: predicted %v, measured %v", i, p.PerQuery[i], measured[i])
		}
	}
}

func TestPredictRejectsBadFraction(t *testing.T) {
	data := uniformPoints(100, 4, 12)
	g := NewGeometry(4)
	for _, z := range []float64{0, -1, 1.5, 1e-6} {
		if _, err := Predict(data, z, true, g, nil, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("zeta=%v: expected error", z)
		}
	}
}

func TestGeometryCapacities(t *testing.T) {
	g := NewGeometry(60)
	if g.EffDataCapacity() != 32 {
		t.Errorf("EffDataCapacity = %d, want 32", g.EffDataCapacity())
	}
	if g.EffDirCapacity() < 2 {
		t.Errorf("EffDirCapacity = %d", g.EffDirCapacity())
	}
}

func BenchmarkSSTreeKNN(b *testing.B) {
	data := clusteredPoints(20000, 16, 13)
	tr := Build(data, NewGeometry(16).Params())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KNNSearch(tr, data[i%len(data)], 21)
	}
}

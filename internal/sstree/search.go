package sstree

import (
	"container/heap"
	"fmt"
	"math"

	"hdidx/internal/query"
	"hdidx/internal/vec"
)

// Result reports the page accesses of one SS-tree search.
type Result struct {
	Radius       float64
	LeafAccesses int
	DirAccesses  int
}

// KNNSearch runs the best-first k-NN search on the SS-tree and reports
// the pages accessed.
func KNNSearch(t *Tree, q []float64, k int) Result {
	if k <= 0 || k > t.NumPoints {
		panic(fmt.Sprintf("sstree: k = %d outside [1, %d]", k, t.NumPoints))
	}
	pq := &nodeHeap{}
	heap.Push(pq, nodeEntry{node: t.Root, dist: t.Root.MinDist(q)})
	var best []float64 // max-heap-free: small k, keep sorted insertion
	kth := math.Inf(1)
	res := Result{}
	for pq.Len() > 0 {
		e := heap.Pop(pq).(nodeEntry)
		if e.dist > kth {
			break
		}
		if e.node.IsLeaf() {
			res.LeafAccesses++
			for _, p := range e.node.Points {
				d := vec.Dist(p, q)
				best = insertBounded(best, d, k)
				if len(best) == k {
					kth = best[k-1]
				}
			}
			continue
		}
		res.DirAccesses++
		for _, c := range e.node.Children {
			d := c.MinDist(q)
			if d <= kth {
				heap.Push(pq, nodeEntry{node: c, dist: d})
			}
		}
	}
	res.Radius = kth
	return res
}

// insertBounded inserts d into the sorted slice best, keeping at most
// k elements.
func insertBounded(best []float64, d float64, k int) []float64 {
	i := len(best)
	for i > 0 && best[i-1] > d {
		i--
	}
	if i >= k {
		return best
	}
	if len(best) < k {
		best = append(best, 0)
	}
	copy(best[i+1:], best[i:])
	best[i] = d
	return best
}

// MeasureLeafAccesses counts, for each query sphere, the leaf spheres
// intersecting it (the access count of an optimal k-NN search with
// that final radius).
func MeasureLeafAccesses(t *Tree, spheres []query.Sphere) []float64 {
	out := make([]float64, len(spheres))
	query.ParallelFor(len(spheres), func(i int) {
		n := 0
		for _, l := range t.Leaves() {
			if l.IntersectsSphere(spheres[i].Center, spheres[i].Radius) {
				n++
			}
		}
		out[i] = float64(n)
	})
	return out
}

type nodeEntry struct {
	node *Node
	dist float64
}

type nodeHeap []nodeEntry

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeEntry)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

package sstree

import (
	"fmt"
	"math/rand"

	"hdidx/internal/dataset"
	"hdidx/internal/query"
)

// Sampling-based prediction for the SS-tree, instantiating the paper's
// Section 4.7 claim: the technique carries over to any index with
// fixed-capacity pages by reusing that index's bulk loader on a sample
// and compensating the page geometry for sampling shrinkage. For
// spheres the compensation differs from Theorem 1 — see
// SphereCompensationFactor.

// Geometry describes the SS-tree page layout: points as float32
// coordinates; directory entries hold a centroid, a radius, and a
// child reference.
type Geometry struct {
	Dim         int
	PageBytes   int
	Utilization float64
}

// NewGeometry returns the default 8 KB-page geometry.
func NewGeometry(dim int) Geometry {
	return Geometry{Dim: dim, PageBytes: 8192, Utilization: 0.95}
}

// EffDataCapacity returns the effective data page capacity.
func (g Geometry) EffDataCapacity() int {
	c := int(float64(g.PageBytes/(4*g.Dim)) * g.Utilization)
	if c < 1 {
		c = 1
	}
	return c
}

// EffDirCapacity returns the effective directory page capacity
// (centroid + radius + reference per entry).
func (g Geometry) EffDirCapacity() int {
	c := int(float64(g.PageBytes/(4*g.Dim+8)) * g.Utilization)
	if c < 2 {
		c = 2
	}
	return c
}

// Params returns the full-index build parameters under g.
func (g Geometry) Params() BuildParams {
	return BuildParams{
		LeafCap: float64(g.EffDataCapacity()),
		DirCap:  float64(g.EffDirCapacity()),
	}
}

// Prediction is the outcome of an SS-tree access prediction.
type Prediction struct {
	PerQuery []float64
	Mean     float64
	// LeafSpheres is the predicted leaf page layout.
	LeafSpheres []*Node
}

// Predict applies the basic sampling model to the SS-tree: build a
// structurally similar mini SS-tree on a zeta-fraction sample with the
// leaf capacity scaled by zeta, grow each leaf sphere's radius by the
// sphere compensation factor, and count query-sphere intersections.
func Predict(data [][]float64, zeta float64, compensate bool, g Geometry, spheres []query.Sphere, rng *rand.Rand) (Prediction, error) {
	if len(data) == 0 {
		return Prediction{}, fmt.Errorf("sstree: empty dataset")
	}
	if zeta <= 0 || zeta > 1 {
		return Prediction{}, fmt.Errorf("sstree: sample fraction %g outside (0, 1]", zeta)
	}
	capacity := float64(g.EffDataCapacity())
	if zeta < 1/capacity {
		return Prediction{}, fmt.Errorf("sstree: sample fraction %g below the 1/C limit %g", zeta, 1/capacity)
	}
	params := g.Params()
	fullHeight := params.DeriveHeight(len(data))
	m := int(float64(len(data))*zeta + 0.5)
	if m < 1 {
		m = 1
	}
	sample := dataset.SampleExact(data, m, rng)
	mini := Build(sample, params.Scaled(zeta, fullHeight))

	grow := 1.0
	if compensate {
		grow = SphereCompensationFactor(capacity, zeta, len(data[0]))
	}
	leaves := make([]*Node, mini.NumLeaves())
	for i, l := range mini.Leaves() {
		leaves[i] = &Node{Level: 1, Centroid: l.Centroid, Radius: l.Radius * grow}
	}
	p := Prediction{LeafSpheres: leaves, PerQuery: make([]float64, len(spheres))}
	var sum float64
	for i, s := range spheres {
		n := 0
		for _, l := range leaves {
			if l.IntersectsSphere(s.Center, s.Radius) {
				n++
			}
		}
		p.PerQuery[i] = float64(n)
		sum += float64(n)
	}
	if len(spheres) > 0 {
		p.Mean = sum / float64(len(spheres))
	}
	return p, nil
}

// SphereCompensationFactor is the sphere analogue of Theorem 1: for C
// points distributed uniformly in a d-dimensional ball of radius R,
// the distance of a point from the center has CDF (r/R)^d, so the
// expected radius of the minimal bounding sphere of n such points
// (centered at the true center) is
//
//	E[max_i r_i] = R * n*d / (n*d + 1).
//
// Reducing the page occupancy from C to C*zeta therefore shrinks the
// expected leaf sphere radius by (C*zeta*d/(C*zeta*d+1)) /
// (C*d/(C*d+1)); the compensation factor is the reciprocal:
//
//	factor = (C*d/(C*d+1)) * ((C*zeta*d + 1)/(C*zeta*d)).
//
// Like Theorem 1 it is exact only under within-page uniformity, and it
// approaches 1 as zeta -> 1. In high dimensions n*d is large and the
// factor is close to 1 — bounding spheres shrink far less under
// sampling than bounding boxes, because the max of n draws from a
// sharply concentrated distance distribution is stable.
func SphereCompensationFactor(capacity, zeta float64, d int) float64 {
	if capacity <= 1 || zeta <= 0 || zeta > 1 || d < 1 {
		return 1
	}
	cd := capacity * float64(d)
	czd := capacity * zeta * float64(d)
	if czd <= 0 {
		return 1
	}
	return (cd / (cd + 1)) * ((czd + 1) / czd)
}

// Package sstree implements a bulk-loaded SS-tree (White & Jain, ICDE
// 1996): an index that organizes points in bounding *spheres* instead
// of rectangles. It exists to demonstrate the paper's Section 4.7
// claim that the sampling prediction technique applies to every index
// structure organizing data in fixed-capacity pages: the same VAMSplit
// bulk loader drives it, and Predict applies the basic sampling model
// with a sphere-specific compensation factor (see compensation.go).
package sstree

import (
	"fmt"
	"math"

	"hdidx/internal/rtree"
	"hdidx/internal/vec"
)

// Node is one SS-tree page: a bounding sphere over its points (leaf)
// or children (directory node).
type Node struct {
	Level    int
	Centroid []float64
	Radius   float64
	Children []*Node
	Points   [][]float64
}

// IsLeaf reports whether the node is a data page.
func (n *Node) IsLeaf() bool { return n.Level == 1 }

// MinDist returns the distance from q to the nearest point of the
// node's bounding sphere (zero inside).
func (n *Node) MinDist(q []float64) float64 {
	d := vec.Dist(q, n.Centroid) - n.Radius
	if d < 0 {
		return 0
	}
	return d
}

// IntersectsSphere reports whether the node's bounding sphere shares a
// point with the ball of the given radius around center.
func (n *Node) IntersectsSphere(center []float64, radius float64) bool {
	return vec.Dist(center, n.Centroid) <= radius+n.Radius
}

// BuildParams parameterizes the bulk loader; capacities are float64 so
// mini-index builds can scale them by a sampling fraction, exactly as
// for the R*-tree.
type BuildParams struct {
	LeafCap float64
	DirCap  float64
	Height  int
}

// Scaled returns params with the leaf capacity scaled by zeta and the
// height forced, mirroring rtree.BuildParams.Scaled.
func (p BuildParams) Scaled(zeta float64, fullHeight int) BuildParams {
	s := p
	s.LeafCap = p.LeafCap * zeta
	s.Height = fullHeight
	return s
}

// DeriveHeight returns the minimal height for n points.
func (p BuildParams) DeriveHeight(n int) int {
	h := 1
	cap := p.LeafCap
	for cap < float64(n) {
		cap *= p.DirCap
		h++
	}
	return h
}

func (p BuildParams) subtreeCap(level int) float64 {
	cap := p.LeafCap
	for l := 2; l <= level; l++ {
		cap *= p.DirCap
	}
	return cap
}

// Tree is a bulk-loaded SS-tree.
type Tree struct {
	Root      *Node
	Dim       int
	Params    BuildParams
	NumPoints int
	leaves    []*Node
	nodes     int
}

// Height returns the tree height (1 for a single leaf).
func (t *Tree) Height() int {
	if t.Root == nil {
		return 0
	}
	return t.Root.Level
}

// NumLeaves returns the number of data pages.
func (t *Tree) NumLeaves() int { return len(t.leaves) }

// NumNodes returns the total page count.
func (t *Tree) NumNodes() int { return t.nodes }

// Leaves returns the leaf pages in build order (owned by the tree).
func (t *Tree) Leaves() []*Node { return t.leaves }

// Build bulk-loads an SS-tree over pts with the VAMSplit strategy.
func Build(pts [][]float64, params BuildParams) *Tree {
	if len(pts) == 0 {
		panic("sstree: Build on empty point set")
	}
	if params.LeafCap <= 0 || params.DirCap < 2 {
		panic(fmt.Sprintf("sstree: invalid capacities %+v", params))
	}
	height := params.Height
	if height <= 0 {
		height = params.DeriveHeight(len(pts))
	}
	b := &builder{params: params}
	root := b.buildLevel(pts, height)
	t := &Tree{Root: root, Dim: len(pts[0]), Params: params, NumPoints: len(pts)}
	var walk func(n *Node)
	walk = func(n *Node) {
		t.nodes++
		if n.IsLeaf() {
			t.leaves = append(t.leaves, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return t
}

type builder struct {
	params BuildParams
}

func (b *builder) buildLevel(pts [][]float64, level int) *Node {
	if level == 1 {
		return newLeaf(pts)
	}
	subcap := b.params.subtreeCap(level - 1)
	k := int(math.Ceil(float64(len(pts)) / subcap))
	if k < 1 {
		k = 1
	}
	if k > len(pts) {
		k = len(pts)
	}
	if maxFan := int(math.Ceil(b.params.DirCap)); k > maxFan {
		k = maxFan
	}
	node := &Node{Level: level, Children: make([]*Node, 0, k)}
	b.splitInto(pts, k, subcap, level-1, node)
	node.bound()
	return node
}

func (b *builder) splitInto(pts [][]float64, k int, subcap float64, childLevel int, parent *Node) {
	if k == 1 {
		parent.Children = append(parent.Children, b.buildLevel(pts, childLevel))
		return
	}
	kl, cut := rtree.ChooseCut(len(pts), k, subcap)
	if cut == 0 {
		parent.Children = append(parent.Children, b.buildLevel(pts, childLevel))
		return
	}
	dim := vec.MaxVarianceDim(pts)
	left, right := vec.PartitionByDim(pts, dim, cut)
	b.splitInto(left, kl, subcap, childLevel, parent)
	b.splitInto(right, k-kl, subcap, childLevel, parent)
}

// newLeaf bounds pts with a sphere centered at their centroid.
func newLeaf(pts [][]float64) *Node {
	dim := len(pts[0])
	c := make([]float64, dim)
	vec.Mean(pts, c)
	var r float64
	for _, p := range pts {
		if d := vec.SqDist(p, c); d > r {
			r = d
		}
	}
	return &Node{Level: 1, Centroid: c, Radius: math.Sqrt(r), Points: pts}
}

// bound sets a directory node's sphere: centroid at the point-count
// weighted mean of child centroids, radius covering every child sphere.
func (n *Node) bound() {
	dim := len(n.Children[0].Centroid)
	n.Centroid = make([]float64, dim)
	total := 0
	for _, c := range n.Children {
		w := c.weight()
		total += w
		for j, v := range c.Centroid {
			n.Centroid[j] += v * float64(w)
		}
	}
	for j := range n.Centroid {
		n.Centroid[j] /= float64(total)
	}
	for _, c := range n.Children {
		if r := vec.Dist(n.Centroid, c.Centroid) + c.Radius; r > n.Radius {
			n.Radius = r
		}
	}
}

func (n *Node) weight() int {
	if n.IsLeaf() {
		return len(n.Points)
	}
	w := 0
	for _, c := range n.Children {
		w += c.weight()
	}
	return w
}

// Validate checks the containment invariants of the tree.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("sstree: nil root")
	}
	total := 0
	var rec func(n *Node) error
	rec = func(n *Node) error {
		if n.IsLeaf() {
			if len(n.Points) == 0 {
				return fmt.Errorf("sstree: empty leaf")
			}
			total += len(n.Points)
			for _, p := range n.Points {
				if vec.Dist(p, n.Centroid) > n.Radius+1e-9 {
					return fmt.Errorf("sstree: point outside leaf sphere")
				}
			}
			return nil
		}
		for _, c := range n.Children {
			if c.Level != n.Level-1 {
				return fmt.Errorf("sstree: child level %d under %d", c.Level, n.Level)
			}
			if vec.Dist(n.Centroid, c.Centroid)+c.Radius > n.Radius+1e-9 {
				return fmt.Errorf("sstree: child sphere escapes parent")
			}
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.Root); err != nil {
		return err
	}
	if total != t.NumPoints {
		return fmt.Errorf("sstree: %d points in leaves, want %d", total, t.NumPoints)
	}
	return nil
}

package vec

import "fmt"

// Matrix is a dense row-major point matrix: row i occupies
// Data[i*Dim : (i+1)*Dim]. It is the flat, cache-friendly counterpart
// of a [][]float64 point set — one contiguous allocation instead of a
// pointer per row — and is what the hot scan kernels (k-NN radius
// computation, sphere scanning) iterate over. Build it once per
// dataset and share it; the kernels never mutate it.
type Matrix struct {
	Data []float64
	N    int // number of rows (points)
	Dim  int // row stride (dimensionality)
}

// NewMatrix flattens pts into a freshly allocated row-major matrix.
// It panics on ragged input; mismatched dimensionality is always a
// programming error in this code base. An empty point set yields a
// zero-dimensional empty matrix.
func NewMatrix(pts [][]float64) Matrix {
	if len(pts) == 0 {
		return Matrix{}
	}
	dim := len(pts[0])
	m := Matrix{
		Data: make([]float64, len(pts)*dim),
		N:    len(pts),
		Dim:  dim,
	}
	for i, p := range pts {
		if len(p) != dim {
			panic(fmt.Sprintf("vec: ragged point set: row %d has dimension %d, want %d", i, len(p), dim))
		}
		copy(m.Data[i*dim:], p)
	}
	return m
}

// AppendRows flattens pts onto the end of the matrix, growing Data as
// needed. The matrix adopts the dimensionality of the first row ever
// appended; later mismatches panic. It lets a streaming scanner reuse
// one backing array across chunks (truncate with Reset between them).
func (m *Matrix) AppendRows(pts [][]float64) {
	if len(pts) == 0 {
		return
	}
	if m.Dim == 0 && m.N == 0 {
		m.Dim = len(pts[0])
	}
	for i, p := range pts {
		if len(p) != m.Dim {
			panic(fmt.Sprintf("vec: ragged point set: row %d has dimension %d, want %d", i, len(p), m.Dim))
		}
		m.Data = append(m.Data, p...)
	}
	m.N += len(pts)
}

// Reset empties the matrix, keeping the backing array and the
// dimensionality for reuse.
func (m *Matrix) Reset() {
	m.Data = m.Data[:0]
	m.N = 0
}

// Len returns the number of rows.
func (m Matrix) Len() int { return m.N }

// Row returns row i as a slice view into the matrix (not a copy).
func (m Matrix) Row(i int) []float64 {
	return m.Data[i*m.Dim : (i+1)*m.Dim : (i+1)*m.Dim]
}

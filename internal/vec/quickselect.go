package vec

// This file implements Hoare's "find" algorithm (quickselect) over point
// sets, partitioning by a single coordinate. The paper's bulk loader
// (Section 4.1) partitions the data with Hoare's find [17]; the same
// routine drives the in-memory mini-index builds and, chunk by chunk,
// the simulated on-disk build.

// SelectByDim partially sorts pts in place so that pts[k] holds the
// element with the k-th smallest coordinate in dimension dim, every
// element of pts[:k] has a coordinate <= pts[k][dim], and every element
// of pts[k+1:] has a coordinate >= pts[k][dim].
//
// It panics if k is out of range.
func SelectByDim(pts [][]float64, dim, k int) {
	if k < 0 || k >= len(pts) {
		panic("vec: SelectByDim index out of range")
	}
	lo, hi := 0, len(pts)-1
	for lo < hi {
		// Median-of-three pivot to defeat sorted/reverse-sorted inputs.
		mid := lo + (hi-lo)/2
		p := medianOfThree(pts, dim, lo, mid, hi)
		i, j := lo, hi
		for i <= j {
			for pts[i][dim] < p {
				i++
			}
			for pts[j][dim] > p {
				j--
			}
			if i <= j {
				pts[i], pts[j] = pts[j], pts[i]
				i++
				j--
			}
		}
		// Invariant: lo..j <= p, i..hi >= p, j < i.
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return
		}
	}
}

func medianOfThree(pts [][]float64, dim, a, b, c int) float64 {
	x, y, z := pts[a][dim], pts[b][dim], pts[c][dim]
	switch {
	case (x <= y && y <= z) || (z <= y && y <= x):
		return y
	case (y <= x && x <= z) || (z <= x && x <= y):
		return x
	default:
		return z
	}
}

// PartitionByDim rearranges pts so that the first k points are the k
// smallest by coordinate dim (in arbitrary internal order) and returns
// the two halves. k must satisfy 0 < k < len(pts).
func PartitionByDim(pts [][]float64, dim, k int) (left, right [][]float64) {
	if k <= 0 || k >= len(pts) {
		panic("vec: PartitionByDim split index out of range")
	}
	SelectByDim(pts, dim, k-1)
	return pts[:k], pts[k:]
}

package vec

import (
	"math/rand"
	"testing"
)

func TestNewMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([][]float64, 37)
	for i := range pts {
		pts[i] = make([]float64, 5)
		for j := range pts[i] {
			pts[i][j] = rng.Float64()
		}
	}
	m := NewMatrix(pts)
	if m.Len() != len(pts) || m.Dim != 5 {
		t.Fatalf("matrix is %dx%d, want %dx5", m.Len(), m.Dim, len(pts))
	}
	for i, p := range pts {
		row := m.Row(i)
		for j, v := range p {
			if row[j] != v {
				t.Fatalf("row %d dim %d: %v != %v", i, j, row[j], v)
			}
		}
	}
	// The matrix is a copy: mutating the source must not leak through.
	pts[0][0] = 999
	if m.Row(0)[0] == 999 {
		t.Error("matrix aliases the source points")
	}
}

func TestNewMatrixEmpty(t *testing.T) {
	m := NewMatrix(nil)
	if m.Len() != 0 || m.Dim != 0 {
		t.Fatalf("empty matrix is %dx%d", m.Len(), m.Dim)
	}
}

func TestNewMatrixRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ragged input")
		}
	}()
	NewMatrix([][]float64{{1, 2}, {1}})
}

func TestMatrixAppendRowsReset(t *testing.T) {
	var m Matrix
	m.AppendRows([][]float64{{1, 2}, {3, 4}})
	if m.Len() != 2 || m.Dim != 2 {
		t.Fatalf("matrix is %dx%d, want 2x2", m.Len(), m.Dim)
	}
	m.AppendRows([][]float64{{5, 6}})
	if m.Len() != 3 || m.Row(2)[1] != 6 {
		t.Fatalf("append failed: %dx%d row2=%v", m.Len(), m.Dim, m.Row(2))
	}
	backing := &m.Data[0]
	m.Reset()
	if m.Len() != 0 || m.Dim != 2 {
		t.Fatalf("reset matrix is %dx%d, want 0x2", m.Len(), m.Dim)
	}
	m.AppendRows([][]float64{{7, 8}})
	if &m.Data[0] != backing {
		t.Error("reset did not keep the backing array")
	}
	if m.Row(0)[0] != 7 {
		t.Errorf("row 0 after reset = %v", m.Row(0))
	}
}

func TestMatrixAppendRowsRaggedPanics(t *testing.T) {
	var m Matrix
	m.AppendRows([][]float64{{1, 2}})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ragged append")
		}
	}()
	m.AppendRows([][]float64{{1, 2, 3}})
}

package vec

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSqDist(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"zero", []float64{0, 0}, []float64{0, 0}, 0},
		{"unit", []float64{0, 0}, []float64{1, 0}, 1},
		{"pythagoras", []float64{0, 0}, []float64{3, 4}, 25},
		{"negative", []float64{-1, -1}, []float64{1, 1}, 8},
		{"1d", []float64{2.5}, []float64{-2.5}, 25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := SqDist(tt.a, tt.b); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("SqDist(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			if got := Dist(tt.a, tt.b); !almostEqual(got, math.Sqrt(tt.want), 1e-12) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.a, tt.b, got, math.Sqrt(tt.want))
			}
		})
	}
}

func TestSqDistDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	SqDist([]float64{1}, []float64{1, 2})
}

func TestDotAndNorm(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm([]float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestMeanVariance(t *testing.T) {
	pts := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	mean := make([]float64, 2)
	variance := make([]float64, 2)
	Mean(pts, mean)
	Variance(pts, mean, variance)
	if !almostEqual(mean[0], 3, 1e-12) || !almostEqual(mean[1], 10, 1e-12) {
		t.Errorf("mean = %v, want [3 10]", mean)
	}
	// Population variance of {1,3,5} is 8/3.
	if !almostEqual(variance[0], 8.0/3.0, 1e-12) {
		t.Errorf("variance[0] = %v, want 8/3", variance[0])
	}
	if !almostEqual(variance[1], 0, 1e-12) {
		t.Errorf("variance[1] = %v, want 0", variance[1])
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty point set")
		}
	}()
	Mean(nil, make([]float64, 1))
}

func TestMaxVarianceDim(t *testing.T) {
	pts := [][]float64{{0, 0, 0}, {1, 5, 2}, {2, 10, 4}}
	if got := MaxVarianceDim(pts); got != 1 {
		t.Errorf("MaxVarianceDim = %d, want 1", got)
	}
}

func TestMaxVarianceDimTieBreaksLow(t *testing.T) {
	pts := [][]float64{{0, 0}, {2, 2}}
	if got := MaxVarianceDim(pts); got != 0 {
		t.Errorf("MaxVarianceDim = %d, want 0 on tie", got)
	}
}

func TestMinMax(t *testing.T) {
	pts := [][]float64{{3, -1}, {1, 5}, {2, 2}}
	lo, hi := MinMax(pts)
	if lo[0] != 1 || lo[1] != -1 || hi[0] != 3 || hi[1] != 5 {
		t.Errorf("MinMax = %v %v, want [1 -1] [3 5]", lo, hi)
	}
}

func TestClonePointsIndependent(t *testing.T) {
	pts := [][]float64{{1, 2}, {3, 4}}
	c := ClonePoints(pts)
	c[0][0] = 99
	if pts[0][0] != 1 {
		t.Error("ClonePoints did not deep-copy")
	}
}

func TestSelectByDimSmall(t *testing.T) {
	pts := [][]float64{{5}, {1}, {4}, {2}, {3}}
	SelectByDim(pts, 0, 2)
	if pts[2][0] != 3 {
		t.Errorf("pts[2] = %v, want 3", pts[2][0])
	}
	for _, p := range pts[:2] {
		if p[0] > 3 {
			t.Errorf("left half contains %v > pivot", p[0])
		}
	}
	for _, p := range pts[3:] {
		if p[0] < 3 {
			t.Errorf("right half contains %v < pivot", p[0])
		}
	}
}

func TestSelectByDimOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SelectByDim([][]float64{{1}}, 0, 5)
}

// Property: SelectByDim places the order statistic that a full sort
// would, for random inputs with duplicates, on any dimension.
func TestSelectByDimMatchesSortProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		dim := 1 + r.Intn(4)
		d := r.Intn(dim)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = make([]float64, dim)
			for j := range pts[i] {
				// Coarse values to force duplicates.
				pts[i][j] = float64(r.Intn(10))
			}
		}
		k := r.Intn(n)
		want := make([]float64, n)
		for i, p := range pts {
			want[i] = p[d]
		}
		sort.Float64s(want)
		SelectByDim(pts, d, k)
		if pts[k][d] != want[k] {
			return false
		}
		for _, p := range pts[:k] {
			if p[d] > pts[k][d] {
				return false
			}
		}
		for _, p := range pts[k+1:] {
			if p[d] < pts[k][d] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPartitionByDim(t *testing.T) {
	pts := [][]float64{{5, 0}, {1, 0}, {4, 0}, {2, 0}, {3, 0}}
	left, right := PartitionByDim(pts, 0, 2)
	if len(left) != 2 || len(right) != 3 {
		t.Fatalf("split sizes %d/%d, want 2/3", len(left), len(right))
	}
	maxLeft := math.Inf(-1)
	for _, p := range left {
		maxLeft = math.Max(maxLeft, p[0])
	}
	for _, p := range right {
		if p[0] < maxLeft {
			t.Errorf("partition violated: right %v < left max %v", p[0], maxLeft)
		}
	}
}

func TestPartitionByDimBadSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PartitionByDim([][]float64{{1}, {2}}, 0, 0)
}

func BenchmarkSqDist64(b *testing.B) {
	a := make([]float64, 64)
	c := make([]float64, 64)
	for i := range a {
		a[i] = float64(i)
		c[i] = float64(64 - i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SqDist(a, c)
	}
}

func BenchmarkSelectByDim(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base := make([][]float64, 10000)
	for i := range base {
		base[i] = []float64{rng.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pts := make([][]float64, len(base))
		copy(pts, base)
		b.StartTimer()
		SelectByDim(pts, 0, len(pts)/2)
	}
}

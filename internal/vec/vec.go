// Package vec provides small vector-math helpers used throughout the
// index and prediction code: squared Euclidean distances, per-dimension
// means and variances, and argmax-variance selection.
//
// Points are represented as []float64 slices of a common dimensionality;
// collections of points are [][]float64. The helpers are deliberately
// allocation-free on the hot paths (distance and variance computation)
// because the bulk loader and the query engine call them millions of
// times per experiment.
package vec

import (
	"fmt"
	"math"
)

// SqDist returns the squared Euclidean distance between a and b.
// It panics if the slices have different lengths; mismatched
// dimensionality is always a programming error in this code base.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 {
	return math.Sqrt(SqDist(a, b))
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: dimension mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of a.
func Norm(a []float64) float64 {
	return math.Sqrt(Dot(a, a))
}

// Clone returns a copy of a.
func Clone(a []float64) []float64 {
	c := make([]float64, len(a))
	copy(c, a)
	return c
}

// ClonePoints deep-copies a set of points.
func ClonePoints(pts [][]float64) [][]float64 {
	c := make([][]float64, len(pts))
	for i, p := range pts {
		c[i] = Clone(p)
	}
	return c
}

// Mean computes the per-dimension mean of pts into out.
// out must have the dimensionality of the points. It panics on an
// empty point set.
func Mean(pts [][]float64, out []float64) {
	if len(pts) == 0 {
		panic("vec: Mean of empty point set")
	}
	for i := range out {
		out[i] = 0
	}
	for _, p := range pts {
		for i, v := range p {
			out[i] += v
		}
	}
	n := float64(len(pts))
	for i := range out {
		out[i] /= n
	}
}

// Variance computes the per-dimension (population) variance of pts
// into out, using mean as the per-dimension mean. out and mean must
// have the dimensionality of the points.
func Variance(pts [][]float64, mean, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for _, p := range pts {
		for i, v := range p {
			d := v - mean[i]
			out[i] += d * d
		}
	}
	n := float64(len(pts))
	for i := range out {
		out[i] /= n
	}
}

// MaxVarianceDim returns the dimension with the highest variance over
// pts. Ties resolve to the lowest dimension index. It panics on an
// empty point set.
func MaxVarianceDim(pts [][]float64) int {
	if len(pts) == 0 {
		panic("vec: MaxVarianceDim of empty point set")
	}
	dim := len(pts[0])
	mean := make([]float64, dim)
	variance := make([]float64, dim)
	Mean(pts, mean)
	Variance(pts, mean, variance)
	best := 0
	for i := 1; i < dim; i++ {
		if variance[i] > variance[best] {
			best = i
		}
	}
	return best
}

// MinMax returns the per-dimension minimum and maximum over pts.
// It panics on an empty point set.
func MinMax(pts [][]float64) (lo, hi []float64) {
	if len(pts) == 0 {
		panic("vec: MinMax of empty point set")
	}
	dim := len(pts[0])
	lo = Clone(pts[0][:dim])
	hi = Clone(pts[0][:dim])
	for _, p := range pts[1:] {
		for i, v := range p {
			if v < lo[i] {
				lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	return lo, hi
}

package vec

import (
	"math"
	"testing"
)

// FuzzSelectByDim feeds arbitrary byte strings decoded as coordinate
// lists to the quickselect and checks the partition invariant. Run
// with `go test -fuzz=FuzzSelectByDim ./internal/vec`; the seed corpus
// executes as part of the normal test suite.
func FuzzSelectByDim(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(2))
	f.Add([]byte{9, 9, 9, 9}, uint8(0))
	f.Add([]byte{255, 0, 128, 64, 32}, uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw uint8) {
		if len(raw) == 0 {
			return
		}
		pts := make([][]float64, len(raw))
		for i, b := range raw {
			pts[i] = []float64{float64(b)}
		}
		k := int(kRaw) % len(pts)
		SelectByDim(pts, 0, k)
		pivot := pts[k][0]
		for _, p := range pts[:k] {
			if p[0] > pivot {
				t.Fatalf("left element %v above pivot %v", p[0], pivot)
			}
		}
		for _, p := range pts[k+1:] {
			if p[0] < pivot {
				t.Fatalf("right element %v below pivot %v", p[0], pivot)
			}
		}
	})
}

// FuzzSqDistSymmetry checks metric axioms of the distance kernel on
// arbitrary inputs.
func FuzzSqDistSymmetry(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{4, 5, 6})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return
		}
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = float64(a[i]) - 128
			y[i] = float64(b[i]) - 128
		}
		d1, d2 := SqDist(x, y), SqDist(y, x)
		if d1 != d2 {
			t.Fatalf("asymmetric: %v vs %v", d1, d2)
		}
		if d1 < 0 || math.IsNaN(d1) {
			t.Fatalf("invalid distance %v", d1)
		}
		if SqDist(x, x) != 0 {
			t.Fatal("self distance not zero")
		}
	})
}

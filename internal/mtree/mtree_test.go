package mtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hdidx/internal/dataset"
	"hdidx/internal/query"
	"hdidx/internal/stats"
)

func clusteredPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	spec := dataset.Spec{Name: "c", N: n, Dim: dim, Clusters: 10, VarianceDecay: 0.9, ClusterStd: 0.1}
	return spec.Generate(rng).Points
}

func params() BuildParams {
	return BuildParams{LeafCap: 32, DirCap: 15, Seed: 1}
}

func TestBuildValidates(t *testing.T) {
	pts := clusteredPoints(3000, 8, 1)
	tr := Build(pts, params())
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumPoints != 3000 {
		t.Errorf("NumPoints = %d", tr.NumPoints)
	}
	if tr.NumLeaves() < 80 {
		t.Errorf("leaves = %d", tr.NumLeaves())
	}
}

func TestBuildSingleLeaf(t *testing.T) {
	pts := clusteredPoints(5, 3, 2)
	tr := Build(pts, BuildParams{LeafCap: 10, DirCap: 4})
	if tr.Height() != 1 || tr.NumLeaves() != 1 {
		t.Fatalf("height=%d leaves=%d", tr.Height(), tr.NumLeaves())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(nil, params())
}

func TestKNNMatchesBruteForceEuclidean(t *testing.T) {
	data := clusteredPoints(2000, 8, 3)
	tr := Build(data, params())
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		q := data[rng.Intn(len(data))]
		for _, k := range []int{1, 5, 21} {
			want := query.KNNBruteRadius(data, q, k)
			got := KNNSearch(tr, q, k)
			if math.Abs(got.Radius-want) > 1e-9 {
				t.Fatalf("k=%d: radius %v, want %v", k, got.Radius, want)
			}
		}
	}
}

func TestKNNMatchesBruteForceL1(t *testing.T) {
	// Metric generality: the M-tree needs only a metric, so L1 must
	// work identically.
	data := clusteredPoints(1500, 6, 5)
	p := params()
	p.Dist = L1
	tr := Build(data, p)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		q := data[rng.Intn(len(data))]
		// Brute force under L1.
		dists := make([]float64, len(data))
		for i, x := range data {
			dists[i] = L1(x, q)
		}
		k := 1 + rng.Intn(10)
		want := kthSmallest(dists, k)
		got := KNNSearch(tr, q, k)
		if math.Abs(got.Radius-want) > 1e-9 {
			t.Fatalf("L1 k=%d: radius %v, want %v", k, got.Radius, want)
		}
	}
}

func kthSmallest(xs []float64, k int) float64 {
	cp := append([]float64(nil), xs...)
	for i := 0; i < k; i++ {
		min := i
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[min] {
				min = j
			}
		}
		cp[i], cp[min] = cp[min], cp[i]
	}
	return cp[k-1]
}

func TestKNNPanicsOnBadK(t *testing.T) {
	tr := Build(clusteredPoints(10, 2, 7), BuildParams{LeafCap: 4, DirCap: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KNNSearch(tr, []float64{0, 0}, 0)
}

func TestPartitionRespectsCapacity(t *testing.T) {
	pts := clusteredPoints(1000, 4, 8)
	tr := Build(pts, params())
	for _, l := range tr.Leaves() {
		if len(l.Points) > 33 { // ceil(LeafCap) + rebalancing slack
			t.Errorf("leaf holds %d points", len(l.Points))
		}
	}
}

// Property: M-tree k-NN equals brute force for random data and k.
func TestKNNProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 50 + r.Intn(400)
		dim := 1 + r.Intn(8)
		data := dataset.GenerateUniform("u", n, dim, r).Points
		tr := Build(data, BuildParams{
			LeafCap: 2 + r.Float64()*30,
			DirCap:  2 + float64(r.Intn(14)),
			Seed:    seed,
		})
		if tr.Validate() != nil {
			return false
		}
		k := 1 + r.Intn(10)
		q := make([]float64, dim)
		for i := range q {
			q[i] = r.Float64()
		}
		want := query.KNNBruteRadius(data, q, k)
		return math.Abs(KNNSearch(tr, q, k).Radius-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPredictAccuracy(t *testing.T) {
	data := clusteredPoints(15000, 16, 9)
	g := NewGeometry(16)
	rng := rand.New(rand.NewSource(10))
	queryPoints := make([][]float64, 60)
	for i := range queryPoints {
		queryPoints[i] = data[rng.Intn(len(data))]
	}
	spheres := query.ComputeSpheres(data, queryPoints, 21)

	p := Params(g)
	p.Seed = 11
	tree := Build(data, p)
	measured := stats.Mean(MeasureLeafAccesses(tree, spheres))

	pred, err := Predict(data, 0.2, true, g, nil, spheres, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	re := stats.RelativeError(pred.Mean, measured)
	if math.Abs(re) > 0.35 {
		t.Errorf("M-tree prediction error %+.2f (pred %.1f, meas %.1f)", re, pred.Mean, measured)
	}
}

func TestPredictRejectsBadFraction(t *testing.T) {
	data := clusteredPoints(100, 4, 13)
	g := NewGeometry(4)
	for _, z := range []float64{0, -1, 1.5, 1e-6} {
		if _, err := Predict(data, z, true, g, nil, nil, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("zeta=%v: expected error", z)
		}
	}
}

func BenchmarkMTreeKNN(b *testing.B) {
	data := clusteredPoints(20000, 16, 14)
	tr := Build(data, Params(NewGeometry(16)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KNNSearch(tr, data[i%len(data)], 21)
	}
}

// Package mtree implements a bulk-loaded M-tree (Ciaccia, Patella &
// Zezula, VLDB 1997; bulk loading per Ciaccia & Patella, ADC 1998 —
// the paper's reference [10]): a metric index organizing points under
// routing objects with covering radii, requiring only a distance
// function, not coordinates.
//
// Section 4.7 lists the M-tree among the structures the sampling
// prediction technique covers. The instantiation here mirrors the
// SS-tree's: build a mini M-tree on a sample with the same bulk
// loader, grow the leaf covering radii by the ball-shrinkage
// compensation factor, count query-ball intersections. For metrics
// other than the Euclidean the compensation uses the same model (the
// factor depends only on how the within-page distance distribution
// concentrates, which the ball model approximates).
package mtree

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"hdidx/internal/vec"
)

// DistFunc is a metric on points.
type DistFunc func(a, b []float64) float64

// Euclidean is the default metric.
func Euclidean(a, b []float64) float64 { return vec.Dist(a, b) }

// L1 is the Manhattan metric, used by tests to demonstrate metric
// generality.
func L1(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Node is one M-tree page: a routing object (pivot) with a covering
// radius over its subtree.
type Node struct {
	Level  int
	Pivot  []float64
	Radius float64
	// Children for directory nodes, Points for leaves.
	Children []*Node
	Points   [][]float64
}

// IsLeaf reports whether the node is a data page.
func (n *Node) IsLeaf() bool { return n.Level == 1 }

// BuildParams parameterizes the bulk loader (float capacities for
// sampling-scaled mini-index builds, as elsewhere).
type BuildParams struct {
	LeafCap float64
	DirCap  float64
	Height  int
	// Dist is the metric; nil means Euclidean.
	Dist DistFunc
	// Seed drives pivot selection.
	Seed int64
}

func (p BuildParams) dist() DistFunc {
	if p.Dist == nil {
		return Euclidean
	}
	return p.Dist
}

// Scaled returns params with the leaf capacity scaled by zeta and the
// height forced.
func (p BuildParams) Scaled(zeta float64, fullHeight int) BuildParams {
	s := p
	s.LeafCap = p.LeafCap * zeta
	s.Height = fullHeight
	return s
}

// DeriveHeight returns the minimal height for n points.
func (p BuildParams) DeriveHeight(n int) int {
	h := 1
	cap := p.LeafCap
	for cap < float64(n) {
		cap *= p.DirCap
		h++
	}
	return h
}

func (p BuildParams) subtreeCap(level int) float64 {
	cap := p.LeafCap
	for l := 2; l <= level; l++ {
		cap *= p.DirCap
	}
	return cap
}

// Tree is a bulk-loaded M-tree.
type Tree struct {
	Root      *Node
	Dist      DistFunc
	NumPoints int
	leaves    []*Node
	nodes     int
}

// Height returns the tree height.
func (t *Tree) Height() int {
	if t.Root == nil {
		return 0
	}
	return t.Root.Level
}

// NumLeaves returns the number of data pages.
func (t *Tree) NumLeaves() int { return len(t.leaves) }

// NumNodes returns the total page count.
func (t *Tree) NumNodes() int { return t.nodes }

// Leaves returns the leaf pages (owned by the tree).
func (t *Tree) Leaves() []*Node { return t.leaves }

// Build bulk-loads an M-tree over pts, following the Ciaccia-Patella
// scheme: sample k pivots, assign every point to its nearest pivot,
// recurse per group.
func Build(pts [][]float64, params BuildParams) *Tree {
	if len(pts) == 0 {
		panic("mtree: Build on empty point set")
	}
	if params.LeafCap <= 0 || params.DirCap < 2 {
		panic(fmt.Sprintf("mtree: invalid capacities %+v", params))
	}
	height := params.Height
	if height <= 0 {
		height = params.DeriveHeight(len(pts))
	}
	b := &builder{
		params: params,
		dist:   params.dist(),
		rng:    rand.New(rand.NewSource(params.Seed + 1)),
	}
	root := b.buildLevel(append([][]float64(nil), pts...), height)
	t := &Tree{Root: root, Dist: b.dist, NumPoints: len(pts)}
	var walk func(n *Node)
	walk = func(n *Node) {
		t.nodes++
		if n.IsLeaf() {
			t.leaves = append(t.leaves, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return t
}

type builder struct {
	params BuildParams
	dist   DistFunc
	rng    *rand.Rand
}

func (b *builder) buildLevel(pts [][]float64, level int) *Node {
	if level == 1 {
		return b.newLeaf(pts)
	}
	subcap := b.params.subtreeCap(level - 1)
	k := int(math.Ceil(float64(len(pts)) / subcap))
	if k < 1 {
		k = 1
	}
	if k > len(pts) {
		k = len(pts)
	}
	if maxFan := int(math.Ceil(b.params.DirCap)); k > maxFan {
		k = maxFan
	}
	groups := b.partition(pts, k, subcap)
	node := &Node{Level: level, Children: make([]*Node, 0, len(groups))}
	for _, g := range groups {
		node.Children = append(node.Children, b.buildLevel(g, level-1))
	}
	b.bound(node)
	return node
}

// partition assigns points to k sampled pivots by nearest distance,
// then rebalances groups exceeding the subtree capacity by spilling
// their farthest points to the nearest non-full pivot.
func (b *builder) partition(pts [][]float64, k int, subcap float64) [][][]float64 {
	if k == 1 {
		return [][][]float64{pts}
	}
	// Sample k distinct pivots.
	pivotIdx := b.rng.Perm(len(pts))[:k]
	pivots := make([][]float64, k)
	for i, idx := range pivotIdx {
		pivots[i] = pts[idx]
	}
	groups := make([][][]float64, k)
	for _, p := range pts {
		best, bestD := 0, math.Inf(1)
		for i, pv := range pivots {
			if d := b.dist(p, pv); d < bestD {
				best, bestD = i, d
			}
		}
		groups[best] = append(groups[best], p)
	}
	// Spill overfull groups (capacity ceiling with slack for the
	// final group structure).
	capLimit := int(math.Ceil(subcap))
	for i := range groups {
		for len(groups[i]) > capLimit {
			// Move the point farthest from pivot i to its next-best
			// non-full pivot.
			far, farD := -1, -1.0
			for j, p := range groups[i] {
				if d := b.dist(p, pivots[i]); d > farD {
					far, farD = j, d
				}
			}
			p := groups[i][far]
			groups[i] = append(groups[i][:far], groups[i][far+1:]...)
			best, bestD := -1, math.Inf(1)
			for j := range groups {
				if j == i || len(groups[j]) >= capLimit {
					continue
				}
				if d := b.dist(p, pivots[j]); d < bestD {
					best, bestD = j, d
				}
			}
			if best < 0 {
				// Everything full: put it back and stop rebalancing.
				groups[i] = append(groups[i], p)
				break
			}
			groups[best] = append(groups[best], p)
		}
	}
	// Drop empty groups.
	out := groups[:0]
	for _, g := range groups {
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// newLeaf creates a leaf with its medoid-ish pivot (the sampled first
// point, as Ciaccia-Patella's simple promotion) and covering radius.
func (b *builder) newLeaf(pts [][]float64) *Node {
	pivot := pts[0]
	var r float64
	for _, p := range pts {
		if d := b.dist(p, pivot); d > r {
			r = d
		}
	}
	return &Node{Level: 1, Pivot: pivot, Radius: r, Points: pts}
}

// bound sets a directory node's routing object: the first child's
// pivot promoted, radius covering all children.
func (b *builder) bound(n *Node) {
	n.Pivot = n.Children[0].Pivot
	for _, c := range n.Children {
		if r := b.dist(n.Pivot, c.Pivot) + c.Radius; r > n.Radius {
			n.Radius = r
		}
	}
}

// Validate checks the covering-radius invariants.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("mtree: nil root")
	}
	total := 0
	var rec func(n *Node) error
	rec = func(n *Node) error {
		if n.IsLeaf() {
			if len(n.Points) == 0 {
				return fmt.Errorf("mtree: empty leaf")
			}
			total += len(n.Points)
			for _, p := range n.Points {
				if t.Dist(p, n.Pivot) > n.Radius+1e-9 {
					return fmt.Errorf("mtree: point outside covering radius")
				}
			}
			return nil
		}
		for _, c := range n.Children {
			if c.Level != n.Level-1 {
				return fmt.Errorf("mtree: child level %d under %d", c.Level, n.Level)
			}
			if t.Dist(n.Pivot, c.Pivot)+c.Radius > n.Radius+1e-9 {
				return fmt.Errorf("mtree: child ball escapes parent")
			}
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(t.Root); err != nil {
		return err
	}
	if total != t.NumPoints {
		return fmt.Errorf("mtree: %d points in leaves, want %d", total, t.NumPoints)
	}
	return nil
}

// Result reports the page accesses of one M-tree search.
type Result struct {
	Radius       float64
	LeafAccesses int
	DirAccesses  int
}

// KNNSearch runs the best-first k-NN search.
func KNNSearch(t *Tree, q []float64, k int) Result {
	if k <= 0 || k > t.NumPoints {
		panic(fmt.Sprintf("mtree: k = %d outside [1, %d]", k, t.NumPoints))
	}
	pq := &nodeHeap{}
	heap.Push(pq, nodeEntry{node: t.Root, dist: minDist(t, t.Root, q)})
	kth := math.Inf(1)
	var best []float64
	res := Result{}
	for pq.Len() > 0 {
		e := heap.Pop(pq).(nodeEntry)
		if e.dist > kth {
			break
		}
		if e.node.IsLeaf() {
			res.LeafAccesses++
			for _, p := range e.node.Points {
				d := t.Dist(p, q)
				best = insertBounded(best, d, k)
				if len(best) == k {
					kth = best[k-1]
				}
			}
			continue
		}
		res.DirAccesses++
		for _, c := range e.node.Children {
			if d := minDist(t, c, q); d <= kth {
				heap.Push(pq, nodeEntry{node: c, dist: d})
			}
		}
	}
	res.Radius = kth
	return res
}

func minDist(t *Tree, n *Node, q []float64) float64 {
	d := t.Dist(q, n.Pivot) - n.Radius
	if d < 0 {
		return 0
	}
	return d
}

func insertBounded(best []float64, d float64, k int) []float64 {
	i := len(best)
	for i > 0 && best[i-1] > d {
		i--
	}
	if i >= k {
		return best
	}
	if len(best) < k {
		best = append(best, 0)
	}
	copy(best[i+1:], best[i:])
	best[i] = d
	return best
}

type nodeEntry struct {
	node *Node
	dist float64
}

type nodeHeap []nodeEntry

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeEntry)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

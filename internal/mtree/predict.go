package mtree

import (
	"fmt"
	"math/rand"

	"hdidx/internal/dataset"
	"hdidx/internal/query"
	"hdidx/internal/sstree"
)

// Sampling-based prediction for the M-tree, completing the Section 4.7
// instantiations: the mini M-tree is built with the index's own bulk
// loader on a sample with the leaf capacity scaled by the sampling
// fraction, and its covering radii are grown by the ball-shrinkage
// compensation factor shared with the SS-tree (the within-page model
// is the same: points distributed in a ball around the routing
// object).

// Geometry describes the M-tree page layout: points as float32
// coordinates; directory entries hold a pivot, a radius, and a child
// reference.
type Geometry = sstree.Geometry

// NewGeometry returns the default 8 KB-page geometry (entry layout
// identical to the SS-tree's: pivot + radius + reference).
func NewGeometry(dim int) Geometry { return sstree.NewGeometry(dim) }

// Params returns the full-index build parameters under g.
func Params(g Geometry) BuildParams {
	return BuildParams{
		LeafCap: float64(g.EffDataCapacity()),
		DirCap:  float64(g.EffDirCapacity()),
	}
}

// Prediction is the outcome of an M-tree access prediction.
type Prediction struct {
	PerQuery []float64
	Mean     float64
	// LeafBalls is the predicted leaf page layout.
	LeafBalls []*Node
}

// Predict applies the basic sampling model to the M-tree under the
// given metric (nil = Euclidean).
func Predict(data [][]float64, zeta float64, compensate bool, g Geometry, dist DistFunc, spheres []query.Sphere, rng *rand.Rand) (Prediction, error) {
	if len(data) == 0 {
		return Prediction{}, fmt.Errorf("mtree: empty dataset")
	}
	if zeta <= 0 || zeta > 1 {
		return Prediction{}, fmt.Errorf("mtree: sample fraction %g outside (0, 1]", zeta)
	}
	capacity := float64(g.EffDataCapacity())
	if zeta < 1/capacity {
		return Prediction{}, fmt.Errorf("mtree: sample fraction %g below the 1/C limit %g", zeta, 1/capacity)
	}
	params := Params(g)
	params.Dist = dist
	params.Seed = rng.Int63()
	fullHeight := params.DeriveHeight(len(data))
	m := int(float64(len(data))*zeta + 0.5)
	if m < 1 {
		m = 1
	}
	sample := dataset.SampleExact(data, m, rng)
	mini := Build(sample, params.Scaled(zeta, fullHeight))

	grow := 1.0
	if compensate {
		grow = sstree.SphereCompensationFactor(capacity, zeta, len(data[0]))
	}
	d := params.dist()
	leaves := make([]*Node, mini.NumLeaves())
	for i, l := range mini.Leaves() {
		leaves[i] = &Node{Level: 1, Pivot: l.Pivot, Radius: l.Radius * grow}
	}
	p := Prediction{LeafBalls: leaves, PerQuery: make([]float64, len(spheres))}
	var sum float64
	for i, s := range spheres {
		n := 0
		for _, l := range leaves {
			if d(s.Center, l.Pivot) <= s.Radius+l.Radius {
				n++
			}
		}
		p.PerQuery[i] = float64(n)
		sum += float64(n)
	}
	if len(spheres) > 0 {
		p.Mean = sum / float64(len(spheres))
	}
	return p, nil
}

// MeasureLeafAccesses counts, per query ball, the leaf covering balls
// intersecting it.
func MeasureLeafAccesses(t *Tree, spheres []query.Sphere) []float64 {
	out := make([]float64, len(spheres))
	query.ParallelFor(len(spheres), func(i int) {
		n := 0
		for _, l := range t.Leaves() {
			if t.Dist(spheres[i].Center, l.Pivot) <= spheres[i].Radius+l.Radius {
				n++
			}
		}
		out[i] = float64(n)
	})
	return out
}
